"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts:

* ``table1`` / ``table2`` / ``table3`` — regenerate a table;
* ``fig6`` / ``fig7`` / ``fig8`` / ``fig9`` — regenerate a figure;
* ``experiments`` — run several artifacts over one shared grid, with
  ``--jobs N`` process-pool fan-out, ``--resume`` from the on-disk
  result store, and ``--keep-going`` degraded mode (retry/quarantine
  failing cells instead of aborting; see docs/RESILIENCE.md);
* ``train`` — run a single configuration (all three performance axes);
  ``--snapshot-out`` additionally publishes live parameter snapshots
  from a ``--backend shm`` run, ``--model-out`` exports the final model
  as a loadable artifact;
* ``serve`` — the scoring service: load a model artifact or attach to a
  live training run's snapshots and answer JSON-lines score requests
  over a local socket, hot-swapping new model versions without dropping
  in-flight requests (see docs/SERVING.md);
* ``gridsearch`` — the step-size selection protocol for one cell.

Examples::

    python -m repro table2 --scale small
    python -m repro experiments --artifacts table2 table3 --jobs 4 --resume
    python -m repro train --task svm --dataset news \\
        --architecture cpu-par --strategy asynchronous --step 0.3
    python -m repro train --task lr --dataset w8a --backend shm \\
        --snapshot-out /tmp/snap.json --model-out model.json
    python -m repro serve --model model.json --port 7878
    python -m repro serve --snapshot /tmp/snap.json
    python -m repro fig7 --tolerance 0.05
"""

from __future__ import annotations

import argparse
import sys

from .datasets import DATASET_NAMES
from .models import TASK_NAMES
from .sgd import ARCHITECTURES, BACKENDS, STRATEGIES


def _add_context_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", default="small", help="dataset scale (tiny/small/medium)")
    p.add_argument("--seed", type=int, default=None, help="generation seed")
    p.add_argument(
        "--tolerance", type=float, default=0.01, help="convergence tolerance"
    )


def _add_ps_manifest_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--ps-manifest",
        nargs="+",
        default=None,
        metavar="PATH",
        help="run manifest(s) from --backend ps runs whose measured "
        "ps.staleness_bucket.* histograms are rendered as an extra "
        "section under Table III",
    )


def _add_grid_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment grid (1 = serial; "
        "results are bit-identical either way)",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persist completed grid cells to DIR (default with --resume: "
        "$REPRO_CACHE_DIR/grid or .repro_cache/grid)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay cells already in the result store instead of "
        "recomputing them",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        help="degraded mode: retry failing grid cells (crash/stall/"
        "divergence) with backoff, quarantine the ones that exhaust "
        "their budget, and render partial results with gap markers "
        "instead of aborting (see docs/RESILIENCE.md)",
    )
    mode.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="abort the whole grid on the first worker failure "
        "(the default)",
    )
    p.set_defaults(keep_going=False)
    shared = p.add_mutually_exclusive_group()
    shared.add_argument(
        "--shared-data",
        dest="shared_data",
        action="store_true",
        help="publish loaded datasets into read-only shared-memory "
        "segments mapped by every grid worker (the default; results "
        "are bit-identical either way)",
    )
    shared.add_argument(
        "--no-shared-data",
        dest="shared_data",
        action="store_false",
        help="let each worker materialise its own datasets "
        "(copy-on-write under fork)",
    )
    p.set_defaults(shared_data=True)
    p.add_argument(
        "--cell-attempts",
        type=int,
        default=None,
        metavar="N",
        help="--keep-going: executions one cell may consume before "
        "quarantine (default 3)",
    )
    p.add_argument(
        "--cell-deadline",
        type=float,
        default=None,
        metavar="SEC",
        help="--keep-going: wall-clock budget for one attempt of one "
        "cell; a worker past it is killed and retried (default: none)",
    )
    p.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        metavar="N",
        help="--keep-going: grid-wide shared retry budget across all "
        "cells (default 8)",
    )
    p.add_argument(
        "--inject-grid-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="chaos-test the grid executor: inject a fault into the "
        "Nth submitted grid job, format kind@job[:wK][:seconds] with "
        "kind in cell-kill|cell-stall|cell-nan (wK = fire on attempts "
        "1..K only, so a retry heals it; e.g. cell-kill@1, "
        "cell-stall@2:600, cell-nan@4:w1); repeatable",
    )


def _make_store(args: argparse.Namespace):
    """The ResultStore implied by --store/--resume, or ``None``."""
    import os

    path = getattr(args, "store", None)
    if path is None and getattr(args, "resume", False):
        path = os.path.join(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"), "grid")
    if path is None:
        return None
    from .experiments import ResultStore

    return ResultStore(path)


def _make_telemetry(args: argparse.Namespace):
    """A live Telemetry when any observability output was requested."""
    if getattr(args, "trace_out", None) or getattr(args, "manifest_out", None):
        from .telemetry import Telemetry

        return Telemetry()
    return None


def _export_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Write the Chrome trace requested on the command line, if any."""
    if telemetry is not None and getattr(args, "trace_out", None):
        from .telemetry import write_chrome_trace

        path = write_chrome_trace(telemetry, args.trace_out)
        print(f"trace written to {path}", file=sys.stderr)


def _make_retry_policy(args: argparse.Namespace):
    """The CellRetryPolicy implied by the --cell-*/--retry-budget flags."""
    overrides = {}
    if getattr(args, "cell_attempts", None) is not None:
        overrides["max_attempts"] = args.cell_attempts
    if getattr(args, "cell_deadline", None) is not None:
        overrides["deadline"] = args.cell_deadline
    if getattr(args, "retry_budget", None) is not None:
        overrides["max_restarts"] = args.retry_budget
    if not overrides and not getattr(args, "keep_going", False):
        return None
    from .faults import CellRetryPolicy

    return CellRetryPolicy(**overrides)


def _make_fault_plan(args: argparse.Namespace):
    """The grid FaultPlan implied by --inject-grid-fault, or ``None``."""
    specs = getattr(args, "inject_grid_fault", None)
    if not specs:
        return None
    from .faults import FaultPlan

    return FaultPlan.parse(specs, seed=getattr(args, "seed", None))


def _make_context(args: argparse.Namespace):
    from .experiments import ExperimentContext

    kwargs = {}
    if getattr(args, "tasks", None):
        kwargs["tasks"] = tuple(args.tasks)
    if getattr(args, "datasets", None):
        kwargs["datasets"] = tuple(args.datasets)
    return ExperimentContext(
        scale=args.scale,
        seed=args.seed,
        tolerance=args.tolerance,
        sync_max_epochs=3000,
        async_max_epochs=950,
        telemetry=_make_telemetry(args),
        jobs=getattr(args, "jobs", 1),
        shared_data=getattr(args, "shared_data", True),
        store=_make_store(args),
        resume=getattr(args, "resume", False),
        keep_going=getattr(args, "keep_going", False),
        retry=_make_retry_policy(args),
        fault_plan=_make_fault_plan(args),
        **kwargs,
    )


def _cmd_table(args: argparse.Namespace) -> int:
    ctx = _make_context(args)
    from . import experiments

    runner = {
        "table1": experiments.run_table1,
        "table2": experiments.run_table2,
        "table3": experiments.run_table3,
        "fig6": experiments.run_fig6,
        "fig7": experiments.run_fig7,
        "fig8": experiments.run_fig8,
        "fig9": experiments.run_fig9,
    }[args.command]
    result = runner(ctx)
    _attach_ps_manifests(result, args)
    print(result.render())
    _export_telemetry(args, ctx.telemetry)
    return 0


def _attach_ps_manifests(result, args: argparse.Namespace) -> None:
    """Fold ``--ps-manifest`` files into a Table III result, if any."""
    paths = getattr(args, "ps_manifest", None)
    if not paths or not hasattr(result, "attach_staleness"):
        return
    import json

    for path in paths:
        with open(path, encoding="utf-8") as fh:
            attached = result.attach_staleness(json.load(fh))
        if not attached:
            print(
                f"warning: {path} carries no ps.staleness_bucket counters "
                "(not a parameter-server run?)",
                file=sys.stderr,
            )


_ARTIFACTS = ("table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9")


def _cmd_experiments(args: argparse.Namespace) -> int:
    ctx = _make_context(args)
    from . import experiments

    runners = {
        "table1": experiments.run_table1,
        "table2": experiments.run_table2,
        "table3": experiments.run_table3,
        "fig6": experiments.run_fig6,
        "fig7": experiments.run_fig7,
        "fig8": experiments.run_fig8,
        "fig9": experiments.run_fig9,
    }
    for name in args.artifacts:
        result = runners[name](ctx)
        if name == "table3":
            _attach_ps_manifests(result, args)
        print(result.render())
        print()
    executed = sum(1 for r in ctx.grid_records if r["source"] == "executed")
    resumed = sum(1 for r in ctx.grid_records if r["source"] == "resumed")
    quarantined = sum(1 for r in ctx.grid_records if r["source"] == "quarantined")
    if ctx.grid_records:
        line = (
            f"grid: {len(ctx.grid_records)} cells "
            f"({executed} executed, {resumed} resumed"
        )
        if quarantined:
            line += f", {quarantined} quarantined"
        line += f") with jobs={ctx.jobs}"
        print(line, file=sys.stderr)
    if ctx.failures:
        print(
            f"degraded run: {len(ctx.failures)} grid job(s) quarantined "
            "('-' marks the gaps above):",
            file=sys.stderr,
        )
        for failure in ctx.failures.values():
            print(f"  ! {failure.summary()}", file=sys.stderr)
    _export_telemetry(args, ctx.telemetry)
    if args.manifest_out:
        import json

        from .telemetry import Telemetry, build_grid_manifest

        tel = ctx.telemetry if isinstance(ctx.telemetry, Telemetry) else None
        manifest = build_grid_manifest(
            ctx.grid_records,
            tel,
            jobs=ctx.jobs,
            settings={
                "scale": args.scale,
                "seed": args.seed,
                "tolerance": args.tolerance,
                "artifacts": list(args.artifacts),
                "resume": bool(args.resume),
                "keep_going": bool(args.keep_going),
                "shared_data": bool(args.shared_data),
                "injected_faults": list(args.inject_grid_fault or []),
            },
        )
        with open(args.manifest_out, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"grid manifest written to {args.manifest_out}", file=sys.stderr)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .sgd import train

    telemetry = _make_telemetry(args)
    fault_plan = None
    if args.inject_fault:
        from .faults import FaultPlan

        fault_plan = FaultPlan.parse(args.inject_fault, seed=args.seed)
    result = train(
        args.task,
        args.dataset,
        architecture=args.architecture,
        strategy=args.strategy,
        scale=args.scale,
        seed=args.seed,
        step_size=args.step,
        max_epochs=args.epochs,
        batch_size=args.batch_size,
        early_stop_tolerance=args.tolerance,
        backend=args.backend,
        threads=args.threads,
        nodes=args.nodes,
        shards=args.shards,
        max_staleness=args.max_staleness,
        checkpoint_dir=args.ps_checkpoint_dir,
        checkpoint_every=args.ps_checkpoint_every,
        checkpoint_seconds=args.ps_checkpoint_seconds,
        server_process=args.ps_server_process,
        epoch_timeout=args.epoch_timeout,
        fault_plan=fault_plan,
        max_restarts=args.max_restarts,
        snapshot_out=args.snapshot_out,
        telemetry=telemetry,
    )
    if args.model_out:
        from .sgd import save_results

        save_results(result, args.model_out)
        print(f"model artifact written to {args.model_out}", file=sys.stderr)
    s = result.summary()
    if result.measured is not None:
        s["backend"] = result.backend
        s["workers"] = result.measured["workers"]
        s["wall_seconds_per_epoch"] = result.measured["wall_seconds_per_epoch"]
        s["wall_seconds_total"] = result.measured["wall_seconds_total"]
        if result.measured["recovery"]:
            s["recoveries"] = len(result.measured["recovery"])
            s["workers_final"] = result.measured["workers_final"]
    width = max(len(k) for k in s)
    for key, value in s.items():
        print(f"{key.ljust(width)} : {value}")
    _export_telemetry(args, telemetry)
    if args.manifest_out:
        from .telemetry import build_manifest

        manifest = build_manifest(
            result,
            telemetry,
            scale=args.scale,
            seed=args.seed,
            max_epochs=args.epochs,
        )
        path = manifest.write(args.manifest_out)
        print(f"manifest written to {path}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import ScoringEngine, ScoringServer, ServerConfig

    telemetry = _make_telemetry(args)
    if args.model is not None:
        engine = ScoringEngine.from_artifact(
            args.model,
            telemetry=telemetry,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            watch=not args.no_watch,
            refresh_interval=(
                args.refresh_interval if args.refresh_interval is not None else 0.25
            ),
        )
        source_desc = {"model": args.model, "watch": not args.no_watch}
    else:
        engine = ScoringEngine.from_snapshot(
            args.snapshot,
            telemetry=telemetry,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            refresh_interval=(
                args.refresh_interval if args.refresh_interval is not None else 0.05
            ),
        )
        source_desc = {"snapshot": args.snapshot}
    config = ServerConfig(host=args.host, port=args.port)
    with engine, ScoringServer(engine, config) as server:
        # The parseable liveness line smoke tests and scripts key on.
        print(f"serving {engine.task} on {server.address}", flush=True)
        try:
            server.wait()
        except KeyboardInterrupt:
            pass
        stats = engine.stats()
    print(
        f"served {stats.requests} requests ({stats.examples} examples, "
        f"{stats.batches} batches, {stats.hot_swaps} hot-swaps)",
        file=sys.stderr,
    )
    _export_telemetry(args, telemetry)
    if args.manifest_out:
        import json

        from .telemetry import build_serve_manifest

        manifest = build_serve_manifest(
            stats.to_dict(),
            telemetry,
            settings={
                **source_desc,
                "task": engine.task,
                "n_features": engine.n_features,
                "address": server.address,
                "max_batch": args.max_batch,
                "max_delay": args.max_delay,
            },
        )
        with open(args.manifest_out, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"serve manifest written to {args.manifest_out}", file=sys.stderr)
    return 0


def _cmd_ladder(args: argparse.Namespace) -> int:
    from .experiments import run_tolerance_ladder

    ctx = _make_context(args)
    ladder = run_tolerance_ladder(args.task, args.dataset, ctx)
    print(ladder.render())
    cross = ladder.crossover()
    if cross is None:
        print("\nno crossover: one configuration leads the whole ladder")
    else:
        tol, prev, new = cross
        print(f"\ncrossover at {int(tol * 100)}%: {prev} -> {new}")
    return 0


def _cmd_gridsearch(args: argparse.Namespace) -> int:
    from .sgd import grid_search

    result = grid_search(
        args.task,
        args.dataset,
        architecture=args.architecture,
        strategy=args.strategy,
        tolerance=args.tolerance,
        scale=args.scale,
        seed=args.seed,
        max_epochs=args.epochs,
    )
    for point in result.points:
        status = "diverged" if point.diverged else f"epochs={point.epochs}"
        print(
            f"step={point.step_size:<10g} time-to-convergence="
            f"{point.time_to_convergence:<12.6g} {status}"
        )
    if result.any_converged:
        print(f"\nbest step size: {result.best_step_size}")
        return 0
    print("\nno step size converged")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'SGD on Modern Hardware' (IPDPS 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _ARTIFACTS:
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        _add_context_args(p)
        _add_grid_args(p)
        p.add_argument(
            "--trace-out",
            default=None,
            metavar="PATH",
            help="write a Chrome-trace JSON of all runs to PATH",
        )
        if name == "table3":
            _add_ps_manifest_arg(p)
        p.set_defaults(func=_cmd_table)

    p = sub.add_parser(
        "experiments",
        help="run several artifacts over one shared (optionally parallel, "
        "resumable) experiment grid",
    )
    p.add_argument(
        "--artifacts",
        nargs="+",
        choices=_ARTIFACTS,
        default=list(_ARTIFACTS),
        metavar="NAME",
        help=f"artifacts to produce (default: all of {', '.join(_ARTIFACTS)})",
    )
    p.add_argument(
        "--tasks",
        nargs="+",
        choices=TASK_NAMES,
        default=None,
        metavar="TASK",
        help="restrict the grid to these tasks (default: all)",
    )
    p.add_argument(
        "--datasets",
        nargs="+",
        choices=DATASET_NAMES,
        default=None,
        metavar="DS",
        help="restrict the grid to these datasets (default: all)",
    )
    _add_context_args(p)
    _add_grid_args(p)
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace JSON of all runs to PATH",
    )
    p.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="write the aggregate grid manifest (per-cell provenance + "
        "merged counters) to PATH",
    )
    _add_ps_manifest_arg(p)
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("train", help="run one configuration")
    p.add_argument("--task", choices=TASK_NAMES, default="lr")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="w8a")
    p.add_argument("--architecture", choices=ARCHITECTURES, default="cpu-par")
    p.add_argument("--strategy", choices=STRATEGIES, default="asynchronous")
    p.add_argument("--step", type=float, default=None, help="step size (default: tuned)")
    p.add_argument("--epochs", type=int, default=None, help="max epochs")
    p.add_argument(
        "--backend",
        choices=BACKENDS,
        default="simulated",
        help="execution backend: 'simulated' (asynchrony simulator + "
        "analytical hardware time), 'shm' (real shared-memory worker "
        "processes, measured wall-clock time) or 'ps' (worker processes "
        "against a sharded parameter server over local TCP); the "
        "measured backends run asynchronous lr/svm only",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --backend shm (default: up to 4, "
        "bounded by the host's cores)",
    )
    p.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --backend ps (default: up to 4, "
        "bounded by the host's cores)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="--backend ps: parameter shards on the server (default: "
        "derived from the model size, at most 8)",
    )
    p.add_argument(
        "--max-staleness",
        type=int,
        default=None,
        metavar="K",
        help="--backend ps: bounded-staleness window in work items — a "
        "worker more than K items ahead of the slowest live worker "
        "blocks on pull (default: unbounded fast-async; 0 = lock-step)",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help="rows per update (default: 512 for the simulated MLP "
        "Hogbatch, 1 for --backend shm; shm with B>1 runs measured "
        "Hogbatch)",
    )
    p.add_argument(
        "--epoch-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="measured backends: seconds the parent waits at an epoch "
        "barrier before declaring the run dead (default 120)",
    )
    p.add_argument(
        "--ps-checkpoint-dir",
        default=None,
        metavar="DIR",
        help="--backend ps: directory for the server's versioned shard "
        "checkpoints; enables epoch-boundary checkpointing and (with "
        "server faults or --ps-server-process) crash-restart failover",
    )
    p.add_argument(
        "--ps-checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="--backend ps: background checkpoint every N pushes since "
        "the last write (requires --ps-checkpoint-dir)",
    )
    p.add_argument(
        "--ps-checkpoint-seconds",
        type=float,
        default=None,
        metavar="SEC",
        help="--backend ps: background checkpoint every SEC seconds "
        "since the last write (requires --ps-checkpoint-dir)",
    )
    p.add_argument(
        "--ps-server-process",
        action="store_true",
        help="--backend ps: run the shard server in its own supervised "
        "process (the failover-capable topology; forced on when the "
        "fault plan carries server-kill/server-stall)",
    )
    p.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="measured backends: inject a seeded fault, format "
        "kind@epoch[:wK][:seconds] with kind in kill|stall|delay|nan "
        "for --backend shm or node-kill|node-stall for --backend ps "
        "(e.g. kill@3, stall@2:w1, node-kill@2); repeatable",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        metavar="N",
        help="measured backends: recover from up to N worker failures "
        "(repartition onto survivors / respawn with timeout backoff) "
        "before giving up; 0 fails fast",
    )
    p.add_argument(
        "--snapshot-out",
        default=None,
        metavar="PATH",
        help="measured backends: publish live parameter snapshots "
        "(seqlock-consistent, readable mid-training by 'repro serve "
        "--snapshot PATH') and write the snapshot descriptor to PATH",
    )
    p.add_argument(
        "--model-out",
        default=None,
        metavar="PATH",
        help="export the final model (parameters + curve) as a JSON "
        "artifact loadable by 'repro serve --model PATH'",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace JSON (chrome://tracing / Perfetto) to PATH",
    )
    p.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="write the reproducible run manifest (config, dataset, git SHA, "
        "counters, final metrics) to PATH",
    )
    _add_context_args(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser(
        "serve",
        help="score requests over a local socket from a model artifact "
        "or a live training run's snapshots (see docs/SERVING.md)",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--model",
        default=None,
        metavar="PATH",
        help="serve this model artifact (from 'repro train --model-out'); "
        "rewriting the file hot-swaps the served model",
    )
    src.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="attach to a live (or finished) shm training run via its "
        "snapshot descriptor (from 'repro train --snapshot-out') and "
        "hot-swap each published version",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0: ephemeral; the bound address is printed)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="micro-batch example cap (default 64)",
    )
    p.add_argument(
        "--max-delay",
        type=float,
        default=0.002,
        metavar="SEC",
        help="micro-batch coalescing window (default 0.002)",
    )
    p.add_argument(
        "--refresh-interval",
        type=float,
        default=None,
        metavar="SEC",
        help="hot-swap poll interval (default: 0.05 for --snapshot, "
        "0.25 for --model)",
    )
    p.add_argument(
        "--no-watch",
        action="store_true",
        help="--model: serve the artifact as loaded, without watching "
        "the file for hot-swaps",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace JSON of the serving session to PATH",
    )
    p.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="write the serving manifest (throughput, latency "
        "percentiles, serve.* counters) to PATH on shutdown",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("ladder", help="time-to-convergence at 10/5/2/1%")
    p.add_argument("--task", choices=TASK_NAMES, default="lr")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="w8a")
    _add_context_args(p)
    p.set_defaults(func=_cmd_ladder)

    p = sub.add_parser("gridsearch", help="step-size grid search for one cell")
    p.add_argument("--task", choices=TASK_NAMES, default="lr")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="w8a")
    p.add_argument("--architecture", choices=ARCHITECTURES, default="cpu-par")
    p.add_argument("--strategy", choices=STRATEGIES, default="asynchronous")
    p.add_argument("--epochs", type=int, default=300)
    _add_context_args(p)
    p.set_defaults(func=_cmd_gridsearch)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
