"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires building a wheel for editable installs under
PEP 517; offline environments that lack the `wheel` module can instead
run ``python setup.py develop`` which this shim enables.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
