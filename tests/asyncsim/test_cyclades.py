"""Tests for the Cyclades conflict-free scheduler."""

import numpy as np
import pytest

from repro.asyncsim.cyclades import (
    CycladesBatch,
    CycladesSchedule,
    conflict_graph,
    run_cyclades_epoch,
    schedule_batch,
)
from repro.linalg import CSRMatrix
from repro.models import make_model
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError


def _csr(rows, d):
    return CSRMatrix.from_rows(
        [(np.asarray(r, dtype=np.int64), np.ones(len(r))) for r in rows], d
    )


class TestScheduleBatch:
    def test_disjoint_examples_all_separate(self):
        X = _csr([[0], [1], [2]], 4)
        batch = schedule_batch(X, np.arange(3))
        assert len(batch.groups) == 3
        assert batch.max_group == 1

    def test_shared_feature_merges(self):
        X = _csr([[0, 1], [1, 2], [3]], 4)
        batch = schedule_batch(X, np.arange(3))
        sizes = sorted(g.size for g in batch.groups)
        assert sizes == [1, 2]

    def test_transitive_conflicts(self):
        # 0-1 share f1, 1-2 share f2 -> all one component
        X = _csr([[0, 1], [1, 2], [2, 3]], 5)
        batch = schedule_batch(X, np.arange(3))
        assert len(batch.groups) == 1

    def test_groups_cover_rows_exactly(self, tiny_sparse):
        rows = np.arange(64)
        batch = schedule_batch(tiny_sparse.X, rows)
        got = np.sort(np.concatenate([g for g in batch.groups]))
        np.testing.assert_array_equal(got, rows)

    def test_groups_are_coordinate_disjoint(self, tiny_sparse):
        rows = np.arange(80)
        batch = schedule_batch(tiny_sparse.X, rows)
        supports = []
        for g in batch.groups:
            s = set()
            for r in g:
                idx, _ = tiny_sparse.X.row(int(r))
                s.update(int(j) for j in idx)
            supports.append(s)
        for i in range(len(supports)):
            for j in range(i + 1, len(supports)):
                assert not (supports[i] & supports[j])

    def test_matches_networkx_components(self, tiny_sparse):
        import networkx as nx

        rows = np.arange(48)
        batch = schedule_batch(tiny_sparse.X, rows)
        g = conflict_graph(tiny_sparse.X, rows)
        nx_sizes = sorted(len(c) for c in nx.connected_components(g))
        uf_sizes = sorted(grp.size for grp in batch.groups)
        assert nx_sizes == uf_sizes


class TestBatchAccounting:
    def test_parallel_efficiency_bounds(self):
        batch = CycladesBatch(groups=(np.arange(6), np.arange(2)))
        for w in (1, 2, 8):
            assert 0.0 < batch.parallel_efficiency(w) <= 1.0

    def test_single_giant_group_kills_efficiency(self):
        batch = CycladesBatch(groups=(np.arange(100),))
        assert batch.parallel_efficiency(10) == pytest.approx(0.1)

    def test_balanced_groups_efficient(self):
        batch = CycladesBatch(groups=tuple(np.arange(5) for _ in range(10)))
        assert batch.parallel_efficiency(10) == pytest.approx(1.0)


class TestRunEpoch:
    def test_serial_equivalence(self, tiny_sparse):
        """The defining invariant: a Cyclades epoch is numerically
        identical to a serial pass in the scheduled order."""
        model = make_model("lr", tiny_sparse)
        w0 = model.init_params(derive_rng(0, "cy"))
        a = w0.copy()
        run_cyclades_epoch(
            model, tiny_sparse.X, tiny_sparse.y, a, 0.5,
            CycladesSchedule(batch_size=64), derive_rng(1, "cy"),
        )
        # replay the exact serial order implied by the scheduler
        b = w0.copy()
        order = derive_rng(1, "cy").permutation(tiny_sparse.n_examples)
        for start in range(0, tiny_sparse.n_examples, 64):
            batch = schedule_batch(tiny_sparse.X, order[start : start + 64])
            for group in batch.groups:
                model.serial_sgd_epoch(tiny_sparse.X, tiny_sparse.y, group, b, 0.5)
        np.testing.assert_allclose(a, b, atol=1e-14)

    def test_learns(self, tiny_sparse):
        model = make_model("svm", tiny_sparse)
        w = model.init_params(derive_rng(0, "cy2"))
        before = model.loss(tiny_sparse.X, tiny_sparse.y, w)
        eff = run_cyclades_epoch(
            model, tiny_sparse.X, tiny_sparse.y, w, 0.5,
            CycladesSchedule(batch_size=32), derive_rng(0, "cy2"),
        )
        assert model.loss(tiny_sparse.X, tiny_sparse.y, w) < before
        assert 0.0 < eff <= 1.0

    def test_rejects_dense(self, tiny_dense):
        model = make_model("lr", tiny_dense)
        w = model.init_params(derive_rng(0, "cy3"))
        with pytest.raises(ConfigurationError, match="sparse"):
            run_cyclades_epoch(
                model, tiny_dense.X, tiny_dense.y, w, 0.5,
                CycladesSchedule(), derive_rng(0, "cy3"),
            )

    def test_schedule_validation(self):
        with pytest.raises(ConfigurationError):
            CycladesSchedule(batch_size=0)
        with pytest.raises(ConfigurationError):
            CycladesSchedule(workers=0)

    def test_sparser_data_schedules_better(self):
        """Hot features merge components: the sparse low-overlap dataset
        must schedule with higher parallel efficiency than a heavily
        overlapping one."""
        from repro.datasets import load

        model_eff = {}
        for name in ("news", "w8a"):
            ds = load(name, "tiny")
            model = make_model("lr", ds)
            w = model.init_params(derive_rng(0, "cy4"))
            model_eff[name] = run_cyclades_epoch(
                model, ds.X, ds.y, w, 0.1,
                CycladesSchedule(batch_size=64, workers=8),
                derive_rng(0, "cy4"),
            )
        assert model_eff["news"] > model_eff["w8a"]
