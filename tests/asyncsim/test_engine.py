"""Tests for the deterministic asynchrony simulator."""

import numpy as np
import pytest

from repro.asyncsim import AsyncSchedule, apply_updates, run_async_epoch
from repro.models import make_model
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError, DivergenceError


class TestAsyncSchedule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AsyncSchedule(concurrency=0)
        with pytest.raises(ConfigurationError):
            AsyncSchedule(concurrency=1, batch_size=0)

    def test_work_items_cover_order_exactly(self):
        sched = AsyncSchedule(concurrency=4, batch_size=3)
        order = np.arange(10)
        items = sched.work_items(order)
        assert [len(i) for i in items] == [3, 3, 3, 1]
        np.testing.assert_array_equal(np.concatenate(items), order)


class TestApplyUpdates:
    def test_sparse_and_dense_mix(self):
        params = np.zeros(5)
        apply_updates(
            params,
            [
                (np.array([0, 0, 2]), np.array([1.0, 1.0, 2.0])),
                (None, np.full(5, 0.5)),
            ],
        )
        np.testing.assert_allclose(params, [2.5, 0.5, 2.5, 0.5, 0.5])


class TestRunEpoch:
    def test_concurrency_one_equals_serial(self, lr_tiny):
        """C=1 must be bit-identical to exact incremental SGD."""
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        a = w0.copy()
        run_async_epoch(
            model, ds.X, ds.y, a, 0.5, AsyncSchedule(concurrency=1), derive_rng(7, "s")
        )
        order = derive_rng(7, "s").permutation(ds.n_examples)
        b = w0.copy()
        model.serial_sgd_epoch(ds.X, ds.y, order, b, 0.5)
        np.testing.assert_array_equal(a, b)

    def test_deterministic_given_seed(self, lr_tiny):
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        runs = []
        for _ in range(2):
            w = w0.copy()
            run_async_epoch(
                model, ds.X, ds.y, w, 0.5,
                AsyncSchedule(concurrency=8), derive_rng(3, "s"),
            )
            runs.append(w)
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_staleness_changes_trajectory(self, lr_tiny):
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        results = {}
        for c in (1, 16, 128):
            w = w0.copy()
            run_async_epoch(
                model, ds.X, ds.y, w, 0.5,
                AsyncSchedule(concurrency=c, shuffle=False), derive_rng(3, "s"),
            )
            results[c] = w
        assert not np.allclose(results[1], results[16])
        assert not np.allclose(results[16], results[128])

    def test_staleness_degrades_statistical_efficiency(self, lr_tiny):
        """The central asynchronous phenomenon: with the same step, more
        concurrency means equal-or-worse loss after equal epochs."""
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        losses = {}
        for c in (1, ds.n_examples):
            w = w0.copy()
            rng = derive_rng(3, "s")
            for _ in range(8):
                run_async_epoch(
                    model, ds.X, ds.y, w, 1.0, AsyncSchedule(concurrency=c), rng
                )
            losses[c] = model.loss(ds.X, ds.y, w)
        assert losses[1] < losses[ds.n_examples]

    def test_full_concurrency_is_batch_like(self, lr_tiny):
        """C >= N with B=1: one round per epoch, every update computed
        from the epoch-start snapshot — i.e. a (sum-scaled) batch-GD
        step.  Verify against the analytic equivalent."""
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        w = w0.copy()
        run_async_epoch(
            model, ds.X, ds.y, w, 0.1,
            AsyncSchedule(concurrency=ds.n_examples, shuffle=False),
            derive_rng(0, "s"),
        )
        expected = w0 - 0.1 * ds.n_examples * model.full_grad(ds.X, ds.y, w0)
        np.testing.assert_allclose(w, expected, atol=1e-9)

    def test_hogbatch_round_snapshot_semantics(self, tiny_mlp_data):
        """With C=2, batches 1 and 2 must both be evaluated at the
        round-start model; sequential mini-batch (C=1) differs."""
        ds = tiny_mlp_data
        model = make_model("mlp", ds)
        w0 = model.init_params(derive_rng(0, "w"))
        out = {}
        for c in (1, 2):
            w = w0.copy()
            run_async_epoch(
                model, ds.X, ds.y, w, 1.0,
                AsyncSchedule(concurrency=c, batch_size=64, shuffle=False),
                derive_rng(0, "s"),
            )
            out[c] = w
        assert not np.allclose(out[1], out[2])

    def test_divergence_raises(self, lr_tiny):
        model, ds = lr_tiny
        w = model.init_params(derive_rng(0, "w"))
        with pytest.raises(DivergenceError):
            for _ in range(300):
                run_async_epoch(
                    model, ds.X, ds.y, w, 1e308,
                    AsyncSchedule(concurrency=64), derive_rng(0, "s"),
                )

    def test_shuffle_off_is_sequential_order(self, lr_tiny):
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        a = w0.copy()
        run_async_epoch(
            model, ds.X, ds.y, a, 0.5,
            AsyncSchedule(concurrency=1, shuffle=False), derive_rng(0, "s"),
        )
        b = w0.copy()
        model.serial_sgd_epoch(ds.X, ds.y, np.arange(ds.n_examples), b, 0.5)
        np.testing.assert_array_equal(a, b)


class TestPipelinedSchedule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AsyncSchedule(concurrency=64, batch_size=2, pipeline_block=32)
        with pytest.raises(ConfigurationError):
            AsyncSchedule(concurrency=64, pipeline_block=0)

    def test_lag_computation(self):
        s = AsyncSchedule(concurrency=6656, pipeline_block=32)
        assert s.pipeline_lag == 208
        assert AsyncSchedule(concurrency=8).pipeline_lag == 0

    def test_deterministic(self, lr_tiny):
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        outs = []
        for _ in range(2):
            w = w0.copy()
            run_async_epoch(
                model, ds.X, ds.y, w, 0.3,
                AsyncSchedule(concurrency=128, pipeline_block=16),
                derive_rng(5, "p"),
            )
            outs.append(w)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_harsher_than_aligned_rounds(self, lr_tiny):
        """At equal concurrency, the pipelined delay model must lose
        statistical efficiency relative to aligned rounds (it forgoes
        the round's implicit averaging)."""
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        losses = {}
        for label, sched in (
            ("aligned", AsyncSchedule(concurrency=128)),
            ("pipelined", AsyncSchedule(concurrency=128, pipeline_block=8)),
        ):
            w = w0.copy()
            rng = derive_rng(3, "cmp")
            for _ in range(6):
                run_async_epoch(model, ds.X, ds.y, w, 1.0, sched, rng)
            losses[label] = model.loss(ds.X, ds.y, w)
        assert losses["pipelined"] >= losses["aligned"] - 1e-9

    def test_lag_one_matches_aligned(self, lr_tiny):
        """pipeline_block == concurrency means lag 1 — identical
        semantics to one aligned round per block."""
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        a = w0.copy()
        run_async_epoch(
            model, ds.X, ds.y, a, 0.5,
            AsyncSchedule(concurrency=16, pipeline_block=16, shuffle=False),
            derive_rng(0, "x"),
        )
        b = w0.copy()
        run_async_epoch(
            model, ds.X, ds.y, b, 0.5,
            AsyncSchedule(concurrency=16, shuffle=False),
            derive_rng(0, "x"),
        )
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_first_blocks_read_epoch_start(self, lr_tiny):
        """With lag >= number of blocks, every gradient is computed at
        the epoch-start model: one effective (chunk-applied) batch
        step."""
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        w = w0.copy()
        run_async_epoch(
            model, ds.X, ds.y, w, 0.1,
            AsyncSchedule(
                concurrency=ds.n_examples * 2, pipeline_block=8, shuffle=False
            ),
            derive_rng(0, "x"),
        )
        expected = w0 - 0.1 * ds.n_examples * model.full_grad(ds.X, ds.y, w0)
        np.testing.assert_allclose(w, expected, atol=1e-9)
