"""Run-manifest assembly and lossless JSON round-trip."""

import json

import repro
from repro.telemetry import (
    MANIFEST_SCHEMA,
    RunManifest,
    Telemetry,
    build_manifest,
    keys,
    load_manifest,
)


def _tiny_result(telemetry=None):
    return repro.train(
        "lr",
        "w8a",
        architecture="cpu-par",
        strategy="asynchronous",
        scale="tiny",
        max_epochs=12,
        telemetry=telemetry,
    )


class TestBuildManifest:
    def test_sections_populated(self):
        tel = Telemetry()
        result = _tiny_result(tel)
        m = build_manifest(result, tel, scale="tiny", max_epochs=12)
        assert m.schema == MANIFEST_SCHEMA
        assert m.repro_version == repro.__version__
        assert m.config["task"] == "lr"
        assert m.config["dataset"] == "w8a"
        assert m.config["scale"] == "tiny"
        assert m.dataset["n_examples"] == 256
        assert m.results["epochs_run"] == result.curve.epochs[-1]
        assert m.results["time_per_iter_s"] == result.time_per_iter
        assert m.counters[keys.GRAD_EVALS] > 0

    def test_counters_consistent_with_result(self):
        tel = Telemetry()
        result = _tiny_result(tel)
        epochs = result.curve.epochs[-1]
        n = result.dataset_stats["n_examples"]
        m = build_manifest(result, tel, scale="tiny")
        # Hogwild: one gradient evaluation and one applied update per
        # example per epoch; simulated time gauges mirror the result.
        assert m.counters[keys.GRAD_EVALS] == epochs * n
        assert m.counters[keys.UPDATES_APPLIED] == epochs * n
        assert m.counters[keys.EPOCHS] == epochs
        assert m.gauges[keys.SIM_SECONDS_PER_EPOCH] == result.time_per_iter
        assert m.gauges[keys.SIM_SECONDS_TOTAL] == epochs * result.time_per_iter

    def test_without_telemetry_results_still_present(self):
        result = _tiny_result()
        m = build_manifest(result)
        assert m.counters == {}
        assert m.results["final_loss"] == result.curve.final_loss

    def test_never_converged_tolerance_stored_as_null(self):
        result = _tiny_result()
        m = build_manifest(result)
        for pct in (10, 5, 2, 1):
            e = m.results[f"epochs_to_{pct}pct"]
            t = m.results[f"time_to_{pct}pct_s"]
            assert (e is None) == (t is None)
        json.dumps(m.to_dict())  # no Infinity anywhere


class TestRoundTrip:
    def test_write_load_equality(self, tmp_path):
        tel = Telemetry()
        result = _tiny_result(tel)
        m = build_manifest(result, tel, scale="tiny", seed=None, max_epochs=12)
        path = m.write(tmp_path / "manifest.json")
        loaded = load_manifest(path)
        assert loaded == m

    def test_json_text_round_trip(self):
        m = RunManifest(
            schema=MANIFEST_SCHEMA,
            created_unix=123.5,
            git_sha="abc123",
            repro_version="1.0.0",
            config={"task": "lr"},
            dataset={"n_examples": 10},
            results={"final_loss": 0.5},
            counters={"sgd.epochs": 3},
            gauges={"sim.seconds_per_epoch": 0.1},
        )
        assert RunManifest.from_dict(json.loads(m.to_json())) == m

    def test_unknown_fields_ignored_on_load(self, tmp_path):
        m = RunManifest(
            schema=MANIFEST_SCHEMA,
            created_unix=0.0,
            git_sha=None,
            repro_version="1.0.0",
        )
        data = m.to_dict()
        data["future_field"] = {"x": 1}
        path = tmp_path / "m.json"
        path.write_text(json.dumps(data))
        assert load_manifest(path) == m
