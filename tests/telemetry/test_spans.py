"""Span nesting, timing, attributes and thread safety of the Tracer."""

import threading

from repro.telemetry import Tracer


class FakeClock:
    """Deterministic clock for timing assertions."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestSpanBasics:
    def test_records_name_and_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work"):
            clock.advance(1.5)
        (rec,) = tracer.records()
        assert rec.name == "work"
        assert rec.duration_s == 1.5
        assert rec.parent_id is None

    def test_start_is_relative_to_tracer_epoch(self):
        clock = FakeClock()
        clock.advance(100.0)
        tracer = Tracer(clock=clock)
        clock.advance(2.0)
        with tracer.span("late"):
            clock.advance(0.5)
        (rec,) = tracer.records()
        assert rec.start_s == 2.0

    def test_attributes_and_mutation(self):
        tracer = Tracer()
        with tracer.span("op", task="lr") as span:
            span.set_attribute("dataset", "w8a")
        (rec,) = tracer.records()
        assert rec.attributes == {"task": "lr", "dataset": "w8a"}

    def test_sim_time_attribution(self):
        tracer = Tracer()
        with tracer.span("cost") as span:
            span.add_sim_time(0.25)
            span.add_sim_time(0.75)
        (rec,) = tracer.records()
        assert rec.sim_seconds == 1.0
        assert tracer.total_sim_seconds() == 1.0

    def test_sim_time_defaults_to_none(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        assert tracer.records()[0].sim_seconds is None

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (rec,) = tracer.records()
        assert rec.attributes["error"] == "ValueError"


class TestNesting:
    def test_child_links_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = tracer.records()
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.parent_id is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = tracer.records()
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_deep_nesting_chain(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("l0"):
            clock.advance(1)
            with tracer.span("l1"):
                clock.advance(1)
                with tracer.span("l2"):
                    clock.advance(1)
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["l2"].parent_id == by_name["l1"].span_id
        assert by_name["l1"].parent_id == by_name["l0"].span_id
        # Inner durations are contained in outer durations.
        assert by_name["l0"].duration_s == 3
        assert by_name["l1"].duration_s == 2
        assert by_name["l2"].duration_s == 1

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
        assert tracer.current_span() is None


class TestThreadSafety:
    def test_spans_from_many_threads_all_collected(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 50

        def work(i: int) -> None:
            for k in range(per_thread):
                with tracer.span(f"t{i}", k=k):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = tracer.records()
        assert len(records) == n_threads * per_thread
        assert len({r.span_id for r in records}) == len(records)

    def test_nesting_is_per_thread(self):
        tracer = Tracer()
        done = threading.Event()
        results = {}

        def other() -> None:
            # The main thread has an open span, but this thread's span
            # must NOT become its child.
            with tracer.span("other-root") as s:
                results["parent"] = s.parent_id
            done.set()

        with tracer.span("main-root"):
            t = threading.Thread(target=other)
            t.start()
            done.wait(5)
            t.join()
        assert results["parent"] is None
