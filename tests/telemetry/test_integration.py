"""End-to-end wiring: telemetry must observe training, never change it."""

import numpy as np

import repro
from repro.telemetry import Telemetry, chrome_trace, keys


def _train(**kwargs):
    return repro.train(
        "lr",
        "w8a",
        architecture="cpu-par",
        strategy="asynchronous",
        scale="tiny",
        max_epochs=15,
        **kwargs,
    )


class TestBitIdentical:
    def test_disabled_telemetry_does_not_perturb_training(self):
        plain = _train()
        nulled = _train(telemetry=repro.NullTelemetry())
        live = _train(telemetry=Telemetry())
        for other in (nulled, live):
            assert other.curve.epochs == plain.curve.epochs
            np.testing.assert_array_equal(other.curve.losses, plain.curve.losses)
            assert other.time_per_iter == plain.time_per_iter

    def test_sync_path_also_identical(self):
        plain = repro.train("svm", "w8a", strategy="synchronous", scale="tiny",
                            max_epochs=10)
        live = repro.train("svm", "w8a", strategy="synchronous", scale="tiny",
                           max_epochs=10, telemetry=Telemetry())
        np.testing.assert_array_equal(live.curve.losses, plain.curve.losses)


class TestCountersMatchResult:
    def test_async_counters_consistent_with_train_result(self):
        tel = Telemetry()
        result = _train(telemetry=tel)
        counters = tel.counters()
        epochs = result.curve.epochs[-1]
        n = result.dataset_stats["n_examples"]
        assert counters[keys.EPOCHS] == epochs
        assert counters[keys.GRAD_EVALS] == epochs * n
        assert counters[keys.UPDATES_APPLIED] == epochs * n
        assert tel.gauges()[keys.SIM_SECONDS_PER_EPOCH] == result.time_per_iter
        assert tel.gauges()[keys.SIM_SECONDS_TOTAL] == epochs * result.time_per_iter

    def test_sync_counters_consistent_with_train_result(self):
        tel = Telemetry()
        result = repro.train("lr", "w8a", architecture="gpu",
                             strategy="synchronous", scale="tiny",
                             max_epochs=10, telemetry=tel)
        counters = tel.counters()
        epochs = result.curve.epochs[-1]
        n = result.dataset_stats["n_examples"]
        assert counters[keys.EPOCHS] == epochs
        assert counters[keys.GRAD_EVALS] == epochs * n
        # Synchronous SGD applies one full-batch update per epoch.
        assert counters[keys.UPDATES_APPLIED] == epochs
        assert counters[keys.KERNEL_LAUNCHES] > 0

    def test_hardware_counters_populated(self):
        tel = Telemetry()
        _train(telemetry=tel)
        counters = tel.counters()
        assert counters[keys.FLOPS_MODELLED] > 0
        assert counters[keys.BYTES_MOVED] > 0


class TestSpanTree:
    def test_train_produces_expected_span_tree(self):
        tel = Telemetry()
        _train(telemetry=tel)
        by_name = {r.name: r for r in tel.tracer.records()}
        assert {"train", "dataset.load", "async.optimize",
                "hardware.cost"} <= set(by_name)
        root = by_name["train"]
        assert root.parent_id is None
        for child in ("dataset.load", "async.optimize", "hardware.cost"):
            assert by_name[child].parent_id == root.span_id
        assert root.attributes["strategy"] == "asynchronous"
        # Simulated time is attributed to the costing span and rolled up.
        assert by_name["hardware.cost"].sim_seconds is not None
        assert tel.tracer.total_sim_seconds() > 0

    def test_trace_exports_after_real_run(self):
        tel = Telemetry()
        _train(telemetry=tel)
        doc = chrome_trace(tel)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases
