"""Chrome-trace export schema and the raw span dump."""

import json

from repro.telemetry import (
    Telemetry,
    Tracer,
    chrome_trace,
    spans_json,
    write_chrome_trace,
    write_spans_json,
)

from .test_spans import FakeClock


def _traced_telemetry() -> Telemetry:
    clock = FakeClock()
    tel = Telemetry(clock=clock)
    with tel.span("outer", task="lr") as outer:
        clock.advance(2.0)
        with tel.span("inner"):
            clock.advance(0.5)
        outer.add_sim_time(1.25)
    tel.count("sgd.epochs", 3)
    return tel


class TestChromeTraceSchema:
    def test_top_level_document(self):
        doc = chrome_trace(_traced_telemetry())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        json.dumps(doc)  # serialisable as-is

    def test_metadata_event_first(self):
        doc = chrome_trace(_traced_telemetry())
        meta = doc["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["name"] == "process_name"
        assert meta["args"] == {"name": "repro"}

    def test_span_events_are_complete_events_in_microseconds(self):
        doc = chrome_trace(_traced_telemetry())
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert set(spans) == {"outer", "inner"}
        outer, inner = spans["outer"], spans["inner"]
        for ev in (outer, inner):
            assert {"name", "ph", "pid", "tid", "ts", "dur", "cat", "args"} <= set(ev)
            assert ev["cat"] == "repro"
        assert outer["ts"] == 0.0
        assert outer["dur"] == 2.5e6
        assert inner["ts"] == 2.0e6
        assert inner["dur"] == 0.5e6
        assert outer["args"]["task"] == "lr"
        assert outer["args"]["sim_seconds"] == 1.25
        # Child is contained in the parent on the timeline.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_counter_events_at_trace_end(self):
        doc = chrome_trace(_traced_telemetry())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        (epochs,) = [e for e in counters if e["name"] == "sgd.epochs"]
        assert epochs["args"] == {"value": 3}
        assert epochs["ts"] == 2.5e6

    def test_bare_tracer_has_no_counter_events(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        doc = chrome_trace(tracer)
        assert [e["ph"] for e in doc["traceEvents"]] == ["M", "X"]

    def test_write_round_trips_through_json(self, tmp_path):
        tel = _traced_telemetry()
        path = write_chrome_trace(tel, tmp_path / "trace.json")
        assert json.loads(path.read_text()) == chrome_trace(tel)


class TestSpansJson:
    def test_dump_matches_records(self, tmp_path):
        tel = _traced_telemetry()
        dump = spans_json(tel.tracer)
        assert [d["name"] for d in dump] == ["inner", "outer"]
        assert all(
            {"name", "span_id", "parent_id", "thread_id", "start_s", "duration_s"}
            <= set(d)
            for d in dump
        )
        path = write_spans_json(tel.tracer, tmp_path / "spans.json")
        assert json.loads(path.read_text()) == dump
