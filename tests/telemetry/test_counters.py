"""Counter/gauge semantics and cross-thread aggregation."""

import threading

import pytest

from repro.telemetry import MetricsRegistry, NullTelemetry, Telemetry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert c.value == 0.0
        c.add()
        c.add(2.5)
        assert c.value == 3.5

    def test_same_name_same_counter(self):
        reg = MetricsRegistry()
        reg.count("x", 1)
        reg.count("x", 2)
        assert reg.counter("x").value == 3

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").add(-1)

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.count("b", 2)
        reg.count("a", 1)
        reg.set_gauge("g", 7.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap == {"counters": {"a": 1, "b": 2}, "gauges": {"g": 7.0}}


class TestGauge:
    def test_last_value_wins_and_max_tracked(self):
        reg = MetricsRegistry()
        g = reg.gauge("t")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max == 5.0


class TestCrossThreadAggregation:
    def test_concurrent_adds_are_not_lost(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 2000

        def work() -> None:
            for _ in range(per_thread):
                reg.count("events")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("events").value == n_threads * per_thread

    def test_telemetry_facade_counts_across_threads(self):
        tel = Telemetry()

        def work(i: int) -> None:
            tel.count("per_thread", i)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tel.counters()["per_thread"] == sum(range(10))


class TestNullTelemetryMetrics:
    def test_null_is_disabled_and_silent(self):
        tel = NullTelemetry()
        assert tel.enabled is False
        tel.count("anything", 5)
        tel.set_gauge("g", 1.0)
        with tel.span("s") as span:
            span.set_attribute("k", "v")
            span.add_sim_time(1.0)
        # No state to observe — the calls simply must not fail.

    def test_live_is_enabled(self):
        assert Telemetry().enabled is True
