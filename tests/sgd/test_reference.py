"""Tests for the budgeted reference-loss protocol."""

import numpy as np
import pytest

from repro.models import make_model
from repro.sgd import reference_loss
from repro.sgd.reference import clear_reference_cache
from repro.utils import derive_rng


@pytest.fixture()
def lr_setup(tiny_sparse):
    model = make_model("lr", tiny_sparse)
    init = model.init_params(derive_rng(0, "init"))
    return model, tiny_sparse, init


class TestReferenceLoss:
    def test_below_initial(self, lr_setup):
        model, ds, init = lr_setup
        ref = reference_loss(model, ds.X, ds.y, init)
        assert ref < model.loss(ds.X, ds.y, init)

    def test_substantially_optimises(self, lr_setup):
        model, ds, init = lr_setup
        ref = reference_loss(model, ds.X, ds.y, init)
        assert ref < 0.25 * model.loss(ds.X, ds.y, init)

    def test_non_negative(self, lr_setup):
        model, ds, init = lr_setup
        assert reference_loss(model, ds.X, ds.y, init) >= 0.0

    def test_in_process_cache(self, lr_setup):
        model, ds, init = lr_setup
        clear_reference_cache()
        a = reference_loss(model, ds.X, ds.y, init, key="t/one")
        b = reference_loss(model, ds.X, ds.y, init, key="t/one")
        assert a == b

    def test_disk_cache_roundtrip(self, lr_setup, tmp_path, monkeypatch):
        model, ds, init = lr_setup
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_reference_cache()
        a = reference_loss(model, ds.X, ds.y, init, key="t/disk")
        clear_reference_cache()  # force re-read from disk
        b = reference_loss(model, ds.X, ds.y, init, key="t/disk")
        assert a == b
        assert (tmp_path / "reference_losses.json").exists()

    def test_corrupt_disk_cache_tolerated(self, lr_setup, tmp_path, monkeypatch):
        model, ds, init = lr_setup
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "reference_losses.json").write_text("{not json")
        clear_reference_cache()
        ref = reference_loss(model, ds.X, ds.y, init, key="t/corrupt")
        assert np.isfinite(ref)

    def test_parallel_jobs_bit_identical(self, lr_setup):
        """The member sweep folds in serial order: any jobs count gives
        exactly the serial value."""
        model, ds, init = lr_setup
        serial = reference_loss(model, ds.X, ds.y, init, jobs=1)
        parallel = reference_loss(model, ds.X, ds.y, init, jobs=3)
        assert parallel == serial

    def test_jobs_env_default(self, lr_setup, monkeypatch):
        model, ds, init = lr_setup
        serial = reference_loss(model, ds.X, ds.y, init, jobs=1)
        monkeypatch.setenv("REPRO_REFERENCE_JOBS", "2")
        assert reference_loss(model, ds.X, ds.y, init) == serial

    def test_disk_cache_merges_concurrent_entries(
        self, lr_setup, tmp_path, monkeypatch
    ):
        """A write merges on top of entries other processes added after
        our initial read — no read-modify-write lost updates."""
        import json

        from repro.sgd import reference as refmod

        model, ds, init = lr_setup
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_reference_cache()
        reference_loss(model, ds.X, ds.y, init, key="t/mine")
        # Simulate a concurrent writer landing between our read and the
        # next write: its entry must survive our subsequent store.
        path = tmp_path / "reference_losses.json"
        other = json.loads(path.read_text())
        other["t/theirs"] = 0.875
        path.write_text(json.dumps(other))
        refmod._store_disk_cache({"t/mine2": 0.5})
        merged = json.loads(path.read_text())
        assert merged["t/theirs"] == 0.875
        assert merged["t/mine2"] == 0.5
        assert "t/mine" in merged

    def test_disk_cache_write_is_atomic(self, lr_setup, tmp_path, monkeypatch):
        model, ds, init = lr_setup
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_reference_cache()
        reference_loss(model, ds.X, ds.y, init, key="t/atomic")
        assert not list(tmp_path.glob("*.tmp"))

    def test_svm_reference(self, tiny_sparse):
        model = make_model("svm", tiny_sparse)
        init = model.init_params(derive_rng(0, "init"))
        ref = reference_loss(model, tiny_sparse.X, tiny_sparse.y, init)
        assert 0.0 <= ref < model.loss(tiny_sparse.X, tiny_sparse.y, init)

    def test_mlp_reference(self, tiny_mlp_data):
        model = make_model("mlp", tiny_mlp_data)
        init = model.init_params(derive_rng(0, "init"))
        ref = reference_loss(model, tiny_mlp_data.X, tiny_mlp_data.y, init)
        assert 0.0 <= ref < model.loss(tiny_mlp_data.X, tiny_mlp_data.y, init)
