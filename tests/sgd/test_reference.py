"""Tests for the budgeted reference-loss protocol."""

import numpy as np
import pytest

from repro.models import make_model
from repro.sgd import reference_loss
from repro.sgd.reference import clear_reference_cache
from repro.utils import derive_rng


@pytest.fixture()
def lr_setup(tiny_sparse):
    model = make_model("lr", tiny_sparse)
    init = model.init_params(derive_rng(0, "init"))
    return model, tiny_sparse, init


class TestReferenceLoss:
    def test_below_initial(self, lr_setup):
        model, ds, init = lr_setup
        ref = reference_loss(model, ds.X, ds.y, init)
        assert ref < model.loss(ds.X, ds.y, init)

    def test_substantially_optimises(self, lr_setup):
        model, ds, init = lr_setup
        ref = reference_loss(model, ds.X, ds.y, init)
        assert ref < 0.25 * model.loss(ds.X, ds.y, init)

    def test_non_negative(self, lr_setup):
        model, ds, init = lr_setup
        assert reference_loss(model, ds.X, ds.y, init) >= 0.0

    def test_in_process_cache(self, lr_setup):
        model, ds, init = lr_setup
        clear_reference_cache()
        a = reference_loss(model, ds.X, ds.y, init, key="t/one")
        b = reference_loss(model, ds.X, ds.y, init, key="t/one")
        assert a == b

    def test_disk_cache_roundtrip(self, lr_setup, tmp_path, monkeypatch):
        model, ds, init = lr_setup
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_reference_cache()
        a = reference_loss(model, ds.X, ds.y, init, key="t/disk")
        clear_reference_cache()  # force re-read from disk
        b = reference_loss(model, ds.X, ds.y, init, key="t/disk")
        assert a == b
        assert (tmp_path / "reference_losses.json").exists()

    def test_corrupt_disk_cache_tolerated(self, lr_setup, tmp_path, monkeypatch):
        model, ds, init = lr_setup
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "reference_losses.json").write_text("{not json")
        clear_reference_cache()
        ref = reference_loss(model, ds.X, ds.y, init, key="t/corrupt")
        assert np.isfinite(ref)

    def test_svm_reference(self, tiny_sparse):
        model = make_model("svm", tiny_sparse)
        init = model.init_params(derive_rng(0, "init"))
        ref = reference_loss(model, tiny_sparse.X, tiny_sparse.y, init)
        assert 0.0 <= ref < model.loss(tiny_sparse.X, tiny_sparse.y, init)

    def test_mlp_reference(self, tiny_mlp_data):
        model = make_model("mlp", tiny_mlp_data)
        init = model.init_params(derive_rng(0, "init"))
        ref = reference_loss(model, tiny_mlp_data.X, tiny_mlp_data.y, init)
        assert 0.0 <= ref < model.loss(tiny_mlp_data.X, tiny_mlp_data.y, init)
