"""Tests for the architecture -> asynchrony-schedule mapping."""

import pytest

from repro.hardware import CpuModel, GpuModel
from repro.sgd.runner import _async_schedule


@pytest.fixture(scope="module")
def models():
    return CpuModel(), GpuModel()


class TestLinearTasks:
    def test_cpu_seq_is_exact_serial(self, models):
        cpu, gpu = models
        s = _async_schedule("lr", "cpu-seq", 3000, 64_700, cpu, gpu, 512)
        assert s.concurrency == 1
        assert s.batch_size == 1
        assert s.pipeline_lag == 0

    def test_cpu_par_uses_hardware_threads(self, models):
        cpu, gpu = models
        s = _async_schedule("lr", "cpu-par", 3000, 64_700, cpu, gpu, 512)
        assert s.concurrency == 56

    def test_gpu_is_pipelined(self, models):
        cpu, gpu = models
        s = _async_schedule("svm", "gpu", 3000, 64_700, cpu, gpu, 512)
        assert s.pipeline_block == 32
        assert s.pipeline_lag >= 2

    def test_gpu_window_scaling_rules(self, models):
        cpu, gpu = models
        # paper scale: full 6656-thread window
        full = _async_schedule("lr", "gpu", 677_399, 677_399, cpu, gpu, 512)
        assert full.concurrency == gpu.spec.concurrent_threads
        # scaled data: ratio-scaled window with the 512-update floor
        small = _async_schedule("lr", "gpu", 3000, 677_399, cpu, gpu, 512)
        assert small.concurrency == 512
        # moderately scaled data keeps the ratio above the floor
        mid = _async_schedule("lr", "gpu", 8000, 19_996, cpu, gpu, 512)
        assert mid.concurrency == pytest.approx(6656 * 8000 / 19_996, rel=0.01)

    def test_gpu_window_capped_by_examples(self, models):
        cpu, gpu = models
        s = _async_schedule("lr", "gpu", 50, 100, cpu, gpu, 512)
        assert s.concurrency <= 50


class TestMlpTask:
    def test_cpu_seq_is_serial_minibatch(self, models):
        cpu, gpu = models
        s = _async_schedule("mlp", "cpu-seq", 3000, 64_700, cpu, gpu, 512)
        assert s.concurrency == 1
        assert s.batch_size == 512

    def test_cpu_par_preserves_batch_fraction(self, models):
        cpu, gpu = models
        # paper scale: 56 of 126 batches in flight
        full = _async_schedule("mlp", "cpu-par", 64_700, 64_700, cpu, gpu, 512)
        assert full.concurrency == 56
        # scaled: same fraction of the (fewer) batches
        small = _async_schedule("mlp", "cpu-par", 3000, 64_700, cpu, gpu, 512)
        assert 2 <= small.concurrency < 6

    def test_gpu_hogbatch_near_sequential(self, models):
        """'the GPU implementation can be regarded as Hogbatch with very
        low concurrency' (Section IV-B)."""
        cpu, gpu = models
        s = _async_schedule("mlp", "gpu", 3000, 64_700, cpu, gpu, 512)
        assert s.concurrency == 2
        assert s.batch_size == 512
