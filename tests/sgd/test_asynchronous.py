"""Tests for the asynchronous SGD runner."""

import numpy as np
import pytest

from repro.asyncsim import AsyncSchedule
from repro.models import make_model
from repro.sgd import SGDConfig, train_asynchronous
from repro.utils import derive_rng


@pytest.fixture()
def setup(tiny_sparse):
    model = make_model("lr", tiny_sparse)
    init = model.init_params(derive_rng(0, "init"))
    return model, tiny_sparse, init


class TestTrainAsynchronous:
    def test_serial_schedule_learns(self, setup):
        model, ds, init = setup
        res = train_asynchronous(
            model, ds.X, ds.y, init, SGDConfig(step_size=1.0, max_epochs=20),
            AsyncSchedule(concurrency=1),
        )
        assert not res.diverged
        assert res.curve.final_loss < 0.5 * res.curve.initial_loss

    def test_curve_starts_at_initial_loss(self, setup):
        model, ds, init = setup
        res = train_asynchronous(
            model, ds.X, ds.y, init, SGDConfig(step_size=0.5, max_epochs=3),
            AsyncSchedule(concurrency=4),
        )
        assert res.curve.epochs[0] == 0
        assert res.curve.initial_loss == pytest.approx(model.loss(ds.X, ds.y, init))

    def test_divergence_recorded_not_raised(self, setup):
        model, ds, init = setup
        res = train_asynchronous(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=1e308, max_epochs=50),
            AsyncSchedule(concurrency=32),
        )
        assert res.diverged
        assert res.curve.diverged  # the paper's "inf" notation

    def test_runaway_loss_detected(self, setup):
        """Loss exceeding divergence_factor x initial counts as
        divergence even while values remain finite."""
        model, ds, init = setup
        res = train_asynchronous(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=5e4, max_epochs=80, divergence_factor=10.0),
            AsyncSchedule(concurrency=64),
        )
        assert res.diverged

    def test_early_stop(self, setup):
        model, ds, init = setup
        cfg = SGDConfig(step_size=1.0, max_epochs=100, target_loss=0.35)
        res = train_asynchronous(model, ds.X, ds.y, init, cfg, AsyncSchedule(concurrency=1))
        assert res.curve.final_loss <= 0.35
        assert len(res.curve) < 100

    def test_deterministic_per_schedule(self, setup):
        model, ds, init = setup
        cfg = SGDConfig(step_size=0.5, max_epochs=4)
        a = train_asynchronous(model, ds.X, ds.y, init, cfg, AsyncSchedule(concurrency=8))
        b = train_asynchronous(model, ds.X, ds.y, init, cfg, AsyncSchedule(concurrency=8))
        np.testing.assert_array_equal(a.params, b.params)

    def test_schedule_seed_isolation(self, setup):
        """Different concurrency -> different shuffle stream -> properly
        isolated trajectories (no accidental sharing)."""
        model, ds, init = setup
        cfg = SGDConfig(step_size=0.5, max_epochs=4)
        a = train_asynchronous(model, ds.X, ds.y, init, cfg, AsyncSchedule(concurrency=8))
        b = train_asynchronous(model, ds.X, ds.y, init, cfg, AsyncSchedule(concurrency=9))
        assert not np.allclose(a.params, b.params)

    def test_hogbatch_on_mlp(self, tiny_mlp_data):
        ds = tiny_mlp_data
        model = make_model("mlp", ds)
        init = model.init_params(derive_rng(0, "init"))
        res = train_asynchronous(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=0.3, max_epochs=60, batch_size=32),
            AsyncSchedule(concurrency=4, batch_size=32),
        )
        assert not res.diverged
        assert res.curve.final_loss < res.curve.initial_loss
