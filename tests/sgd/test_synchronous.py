"""Tests for the synchronous SGD runners."""

import numpy as np
import pytest

from repro.models import make_model
from repro.sgd import SGDConfig, train_minibatch_synchronous, train_synchronous
from repro.utils import derive_rng


@pytest.fixture()
def setup(tiny_dense):
    model = make_model("lr", tiny_dense)
    init = model.init_params(derive_rng(0, "init"))
    return model, tiny_dense, init


class TestFullBatch:
    def test_loss_monotone_for_small_step(self, setup):
        model, ds, init = setup
        res = train_synchronous(model, ds.X, ds.y, init, SGDConfig(step_size=1.0, max_epochs=20))
        losses = res.curve.losses
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_matches_manual_gradient_descent(self, setup):
        model, ds, init = setup
        res = train_synchronous(model, ds.X, ds.y, init, SGDConfig(step_size=0.5, max_epochs=3))
        w = init.copy()
        for _ in range(3):
            w -= 0.5 * model.full_grad(ds.X, ds.y, w)
        np.testing.assert_allclose(res.params, w, atol=1e-12)

    def test_initial_params_not_mutated(self, setup):
        model, ds, init = setup
        before = init.copy()
        train_synchronous(model, ds.X, ds.y, init, SGDConfig(step_size=0.5, max_epochs=2))
        np.testing.assert_array_equal(init, before)

    def test_epoch_trace_captured_once(self, setup):
        model, ds, init = setup
        res = train_synchronous(model, ds.X, ds.y, init, SGDConfig(step_size=0.5, max_epochs=5))
        names = [op.name for op in res.epoch_trace]
        # one gradient pipeline + one model update — not five
        assert names.count("model_update") == 1
        assert names[-1] == "model_update"

    def test_early_stop_at_target(self, setup):
        model, ds, init = setup
        free = train_synchronous(model, ds.X, ds.y, init, SGDConfig(step_size=1.0, max_epochs=50))
        target = free.curve.losses[10]
        res = train_synchronous(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=1.0, max_epochs=50, target_loss=target),
        )
        assert len(res.curve) <= 12  # stopped around epoch 10

    def test_divergent_step_reported_infinite(self, setup):
        model, ds, init = setup
        res = train_synchronous(
            model, ds.X, ds.y, init, SGDConfig(step_size=1e9, max_epochs=30)
        )
        assert res.curve.diverged

    def test_deterministic(self, setup):
        model, ds, init = setup
        cfg = SGDConfig(step_size=1.0, max_epochs=5)
        a = train_synchronous(model, ds.X, ds.y, init, cfg)
        b = train_synchronous(model, ds.X, ds.y, init, cfg)
        np.testing.assert_array_equal(a.params, b.params)
        assert a.curve.losses == b.curve.losses


class TestMiniBatch:
    def test_reduces_loss(self, setup):
        model, ds, init = setup
        res = train_minibatch_synchronous(
            model, ds.X, ds.y, init, SGDConfig(step_size=0.5, max_epochs=5, batch_size=32)
        )
        assert res.curve.final_loss < res.curve.initial_loss

    def test_trace_contains_all_rounds(self, setup):
        model, ds, init = setup
        res = train_minibatch_synchronous(
            model, ds.X, ds.y, init, SGDConfig(step_size=0.5, max_epochs=2, batch_size=64)
        )
        n_batches = -(-ds.n_examples // 64)
        names = [op.name for op in res.epoch_trace]
        assert names.count("model_update") == n_batches

    def test_batch_size_n_equals_full_batch_per_epoch_updates(self, setup):
        model, ds, init = setup
        res = train_minibatch_synchronous(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=0.5, max_epochs=1, batch_size=ds.n_examples),
        )
        assert [op.name for op in res.epoch_trace].count("model_update") == 1
