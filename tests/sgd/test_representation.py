"""Tests for the data-representation axis of train() (Fig. 1's circles)."""

import numpy as np
import pytest

from repro.sgd import train
from repro.utils.errors import ConfigurationError


COMMON = dict(scale="tiny", step_size=1.0, max_epochs=12, seed=0)


class TestValidation:
    def test_unknown_representation(self):
        with pytest.raises(ConfigurationError, match="representation"):
            train("lr", "w8a", representation="csc", **COMMON)

    def test_mlp_rejects_override(self):
        with pytest.raises(ConfigurationError, match="lr/svm"):
            train("mlp", "w8a", representation="dense", **COMMON)


class TestNumericalEquivalence:
    def test_same_losses_either_representation(self):
        """The representation changes storage and hardware cost, never
        the mathematics: loss curves must match bit-for-bit."""
        a = train("lr", "w8a", strategy="synchronous", representation="auto", **COMMON)
        b = train("lr", "w8a", strategy="synchronous", representation="dense", **COMMON)
        np.testing.assert_allclose(a.curve.losses, b.curve.losses, rtol=1e-12)

    def test_sparsify_dense_dataset_equivalent(self):
        a = train("svm", "covtype", strategy="synchronous", representation="auto", **COMMON)
        b = train("svm", "covtype", strategy="synchronous", representation="sparse", **COMMON)
        np.testing.assert_allclose(a.curve.losses, b.curve.losses, rtol=1e-12)


class TestHardwareEffects:
    def test_dense_representation_costs_more_on_sparse_data(self):
        """Densifying w8a (3.9% non-zero) inflates the iteration time on
        the parallel backends — the reason the paper's sparse CSR
        circles are the implemented ones.  (Sequentially the comparison
        nearly breaks even: the pointer-chasing CSR path is so
        latency-bound that streaming 26x the bytes costs about the
        same — itself a finding worth keeping.)"""
        for arch in ("cpu-par", "gpu"):
            sparse = train(
                "lr", "w8a", architecture=arch, strategy="synchronous",
                representation="auto", **COMMON,
            )
            dense = train(
                "lr", "w8a", architecture=arch, strategy="synchronous",
                representation="dense", **COMMON,
            )
            assert dense.time_per_iter > 2.0 * sparse.time_per_iter, arch
        seq_sparse = train(
            "lr", "w8a", architecture="cpu-seq", strategy="synchronous",
            representation="auto", **COMMON,
        )
        seq_dense = train(
            "lr", "w8a", architecture="cpu-seq", strategy="synchronous",
            representation="dense", **COMMON,
        )
        assert seq_dense.time_per_iter >= 0.9 * seq_sparse.time_per_iter

    def test_dense_hogwild_gets_the_coherence_storm(self):
        """Asynchronous updates through a dense representation write all
        d coordinates: the hot-line floor erases (nearly all of) the
        parallel speedup that the sparse representation of the *same
        data* enjoys."""
        def par_speedup(representation):
            seq = train(
                "lr", "w8a", architecture="cpu-seq",
                representation=representation, **COMMON,
            )
            par = train(
                "lr", "w8a", architecture="cpu-par",
                representation=representation, **COMMON,
            )
            return seq.time_per_iter / par.time_per_iter

        assert par_speedup("dense") < 0.85 * par_speedup("auto")

    def test_sparse_hogwild_keeps_parallel_speedup(self):
        seq = train("lr", "w8a", architecture="cpu-seq", representation="auto", **COMMON)
        par = train("lr", "w8a", architecture="cpu-par", representation="auto", **COMMON)
        assert par.time_per_iter < seq.time_per_iter

    def test_covtype_sparse_representation_wastes_index_traffic(self):
        """A CSR view of fully dense data stores indices for every cell:
        more bytes per iteration, never fewer."""
        auto = train(
            "lr", "covtype", architecture="gpu", strategy="synchronous",
            representation="auto", **COMMON,
        )
        sparse = train(
            "lr", "covtype", architecture="gpu", strategy="synchronous",
            representation="sparse", **COMMON,
        )
        assert sparse.time_per_iter >= 0.95 * auto.time_per_iter
