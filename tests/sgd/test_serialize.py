"""Tests for result serialization."""

import io
import math

import pytest

from repro.sgd import train
from repro.sgd.serialize import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def result():
    return train(
        "lr", "w8a", architecture="gpu", strategy="synchronous",
        scale="tiny", step_size=30.0, max_epochs=40,
    )


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back.task == result.task
        assert back.architecture == result.architecture
        assert back.step_size == result.step_size
        assert back.time_per_iter == result.time_per_iter
        assert back.curve.losses == result.curve.losses
        assert back.epochs_to(0.05) == result.epochs_to(0.05)
        assert back.time_to(0.05) == result.time_to(0.05)

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results(result, path)
        (loaded,) = load_results(path)
        assert loaded.curve.losses == result.curve.losses

    def test_filelike_roundtrip_many(self, result):
        buf = io.StringIO()
        save_results([result, result], buf)
        buf.seek(0)
        loaded = load_results(buf)
        assert len(loaded) == 2

    def test_infinite_losses_survive(self, result):
        d = result_to_dict(result)
        d["curve"]["epochs"].append(d["curve"]["epochs"][-1] + 1)
        d["curve"]["losses"].append("inf")
        back = result_from_dict(d)
        assert math.isinf(back.curve.final_loss)
        assert back.curve.diverged


class TestParamsRoundTrip:
    """The model-artifact satellite: a run's final parameters export
    by default and reload bit-exactly, making the document loadable by
    ``repro serve --model``."""

    def test_params_serialised_by_default(self, result):
        import numpy as np

        assert result.params is not None  # train() surfaces the model
        d = result_to_dict(result)
        assert len(d["params"]) == result.params.shape[0]
        back = result_from_dict(d)
        assert back.params.dtype == np.float64
        np.testing.assert_array_equal(back.params, result.params)

    def test_params_excludable(self, result):
        d = result_to_dict(result, include_params=False)
        assert "params" not in d
        assert result_from_dict(d).params is None

    def test_file_roundtrip_keeps_params(self, result, tmp_path):
        import numpy as np

        path = tmp_path / "model.json"
        save_results(result, path)
        (loaded,) = load_results(path)
        np.testing.assert_array_equal(loaded.params, result.params)

    def test_non_finite_params_encode(self, result):
        import numpy as np

        d = result_to_dict(result)
        d["params"][0] = "inf"
        d["params"][1] = "nan"
        back = result_from_dict(d)
        assert math.isinf(back.params[0])
        assert math.isnan(back.params[1])
        assert np.isfinite(back.params[2:]).all()

    def test_artifact_drives_scoring_engine(self, result, tmp_path):
        from repro.serving import ScoringEngine

        path = tmp_path / "model.json"
        save_results(result, path)
        eng = ScoringEngine.from_artifact(path, watch=False)
        resp = eng.score([{"indices": [0], "values": [1.0]}])
        assert resp.results[0].margin == pytest.approx(
            float(result.params[0]), abs=1e-12
        )


class TestValidation:
    def test_rejects_non_result(self):
        with pytest.raises(ConfigurationError):
            result_from_dict({"foo": 1})

    def test_rejects_future_version(self, result):
        d = result_to_dict(result)
        d["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            result_from_dict(d)

    def test_rejects_non_document(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_results(path)
