"""Tests for result serialization."""

import io
import math

import pytest

from repro.sgd import train
from repro.sgd.serialize import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def result():
    return train(
        "lr", "w8a", architecture="gpu", strategy="synchronous",
        scale="tiny", step_size=30.0, max_epochs=40,
    )


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back.task == result.task
        assert back.architecture == result.architecture
        assert back.step_size == result.step_size
        assert back.time_per_iter == result.time_per_iter
        assert back.curve.losses == result.curve.losses
        assert back.epochs_to(0.05) == result.epochs_to(0.05)
        assert back.time_to(0.05) == result.time_to(0.05)

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results(result, path)
        (loaded,) = load_results(path)
        assert loaded.curve.losses == result.curve.losses

    def test_filelike_roundtrip_many(self, result):
        buf = io.StringIO()
        save_results([result, result], buf)
        buf.seek(0)
        loaded = load_results(buf)
        assert len(loaded) == 2

    def test_infinite_losses_survive(self, result):
        d = result_to_dict(result)
        d["curve"]["epochs"].append(d["curve"]["epochs"][-1] + 1)
        d["curve"]["losses"].append("inf")
        back = result_from_dict(d)
        assert math.isinf(back.curve.final_loss)
        assert back.curve.diverged


class TestValidation:
    def test_rejects_non_result(self):
        with pytest.raises(ConfigurationError):
            result_from_dict({"foo": 1})

    def test_rejects_future_version(self, result):
        d = result_to_dict(result)
        d["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            result_from_dict(d)

    def test_rejects_non_document(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_results(path)
