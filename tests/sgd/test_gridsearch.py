"""Tests for the step-size grid search."""

import math

import pytest

from repro.sgd import GridSearchResult, grid_search
from repro.sgd.gridsearch import GridPoint
from repro.utils.errors import ConfigurationError


class TestGridSearch:
    @pytest.fixture(scope="class")
    def result(self):
        return grid_search(
            "lr",
            "w8a",
            architecture="cpu-seq",
            strategy="asynchronous",
            tolerance=0.10,
            grid=(1e-3, 0.3, 1.0, 1e7),
            scale="tiny",
            max_epochs=60,
            seed=0,
        )

    def test_all_points_evaluated(self, result):
        assert [p.step_size for p in result.points] == [1e-3, 0.3, 1.0, 1e7]

    def test_best_is_finite_minimum(self, result):
        finite = [p for p in result.points if math.isfinite(p.time_to_convergence)]
        assert result.best.time_to_convergence == min(
            p.time_to_convergence for p in finite
        )

    def test_absurd_steps_rank_infinite(self, result):
        by_step = {p.step_size: p for p in result.points}
        assert math.isinf(by_step[1e-3].time_to_convergence)  # far too small
        assert math.isinf(by_step[1e7].time_to_convergence)  # diverges

    def test_any_converged(self, result):
        assert result.any_converged

    def test_tie_break_prefers_smaller_step(self):
        r = GridSearchResult(
            task="lr", dataset="d", architecture="a", strategy="s", tolerance=0.01
        )
        r.points = [
            GridPoint(step_size=1.0, time_to_convergence=5.0, epochs=5, diverged=False),
            GridPoint(step_size=0.1, time_to_convergence=5.0, epochs=5, diverged=False),
        ]
        assert r.best_step_size == 0.1

    def test_no_convergence_raises(self):
        r = GridSearchResult(
            task="lr", dataset="d", architecture="a", strategy="s", tolerance=0.01
        )
        r.points = [
            GridPoint(step_size=1.0, time_to_convergence=math.inf, epochs=None, diverged=True)
        ]
        assert not r.any_converged
        with pytest.raises(ConfigurationError, match="no step size converged"):
            _ = r.best

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="grid"):
            grid_search("lr", "w8a", grid=(), scale="tiny")
