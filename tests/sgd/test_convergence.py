"""Tests for loss curves and the convergence thresholds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sgd.convergence import LossCurve, tolerance_threshold
from repro.utils.errors import ConfigurationError


class TestToleranceThreshold:
    def test_gap_definition(self):
        # optimal 0.5, initial 0.7: 1% of the 0.2 gap above optimum
        assert tolerance_threshold(0.5, 0.01, 0.7) == pytest.approx(0.502)

    def test_near_zero_optimum_stays_reachable(self):
        thr = tolerance_threshold(1e-12, 0.01, 0.7)
        assert thr > 1e-4  # not an impossible "exactly zero" target

    def test_relative_fallback_without_initial(self):
        assert tolerance_threshold(0.5, 0.10) == pytest.approx(0.55)

    def test_tighter_tolerance_lower_threshold(self):
        thresholds = [tolerance_threshold(0.3, t, 1.0) for t in (0.10, 0.05, 0.02, 0.01)]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            tolerance_threshold(0.5, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            tolerance_threshold(-0.5, 0.01, 1.0)

    @given(
        st.floats(0.0, 10.0),
        st.floats(0.001, 0.5),
        st.floats(0.0, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_threshold_between_optimum_and_initial(self, opt, tol, init):
        thr = tolerance_threshold(opt, tol, init)
        assert thr >= opt
        if init > opt:
            assert thr <= init


class TestLossCurve:
    def _curve(self, losses):
        c = LossCurve()
        for i, v in enumerate(losses):
            c.record(i, v)
        return c

    def test_record_and_properties(self):
        c = self._curve([1.0, 0.5, 0.25])
        assert c.initial_loss == 1.0
        assert c.final_loss == 0.25
        assert c.best_loss == 0.25
        assert len(c) == 3

    def test_requires_increasing_epochs(self):
        c = self._curve([1.0])
        with pytest.raises(ConfigurationError, match="increase"):
            c.record(0, 0.9)

    def test_epochs_to_first_crossing(self):
        c = self._curve([1.0, 0.6, 0.4, 0.45, 0.3])
        assert c.epochs_to(0.45) == 2  # first time at-or-below
        assert c.epochs_to(0.1) is None

    def test_divergence(self):
        c = self._curve([1.0, 2.0, math.inf])
        assert c.diverged
        assert c.best_loss == 1.0
        assert c.epochs_to(0.5) is None

    def test_time_axis(self):
        c = self._curve([1.0, 0.5])
        np.testing.assert_allclose(c.time_axis(0.25), [0.0, 0.25])

    def test_empty_curve_raises(self):
        with pytest.raises(ConfigurationError):
            LossCurve().initial_loss
