"""Tests for the top-level train() facade."""

import math

import pytest

from repro.faults import FaultPlan
from repro.sgd import train
from repro.sgd.runner import full_scale_factor, working_set_bytes
from repro.datasets import PAPER_PROFILES, load, load_mlp
from repro.models import make_model
from repro.utils.errors import ConfigurationError


class TestValidation:
    def test_unknown_task(self):
        with pytest.raises(ConfigurationError, match="unknown task"):
            train("cnn", "w8a", scale="tiny")

    def test_unknown_architecture(self):
        with pytest.raises(ConfigurationError, match="unknown architecture"):
            train("lr", "w8a", architecture="tpu", scale="tiny")

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            train("lr", "w8a", strategy="semi", scale="tiny")


class TestSeedHandling:
    def test_seed_zero_gets_its_own_reference_key(self, monkeypatch):
        """Regression: seed=0 must not collapse onto the default seed's
        cached reference optimum (`seed or DEFAULT` treated 0 as
        unset)."""
        import repro.sgd.runner as runner_mod

        seen = []
        real = runner_mod.reference_loss

        def capture(model, X, y, init, key):
            seen.append(key)
            return real(model, X, y, init, key=key)

        monkeypatch.setattr(runner_mod, "reference_loss", capture)
        train("lr", "w8a", scale="tiny", seed=0, step_size=0.1, max_epochs=2)
        train("lr", "w8a", scale="tiny", seed=None, step_size=0.1, max_epochs=2)
        key_zero, key_default = seen
        assert "seed0" in key_zero
        assert key_zero != key_default

    def test_seed_zero_reruns_bit_identical(self):
        a = train("lr", "w8a", scale="tiny", seed=0, step_size=0.1, max_epochs=3)
        b = train("lr", "w8a", scale="tiny", seed=0, step_size=0.1, max_epochs=3)
        assert a.curve.losses == b.curve.losses
        assert a.optimal_loss == b.optimal_loss


class TestScaleFactors:
    def test_sparse_factor_uses_nnz(self):
        ds = load("news", "tiny")
        factor = full_scale_factor(ds, "lr")
        full = PAPER_PROFILES["news"]
        assert factor == pytest.approx(full.n_examples * full.nnz_avg / ds.nnz)

    def test_dense_factor_uses_rows(self):
        ds = load("covtype", "tiny")
        assert full_scale_factor(ds, "lr") == pytest.approx(
            PAPER_PROFILES["covtype"].n_examples / ds.n_examples
        )

    def test_working_set_scales_to_paper(self):
        ds = load("rcv1", "tiny")
        ws = working_set_bytes(ds, make_model("lr", ds), "lr")
        # rcv1 sparse is ~1.2 GB in the paper (Table I); our float64 CSR
        # representation is within a factor ~2.
        assert 0.3e9 < ws < 1.6e9


class TestTrainSync:
    @pytest.fixture(scope="class")
    def result(self):
        return train(
            "lr", "w8a", architecture="gpu", strategy="synchronous",
            scale="tiny", step_size=30.0, max_epochs=120,
        )

    def test_result_fields(self, result):
        assert result.task == "lr"
        assert result.architecture == "gpu"
        assert result.time_per_iter > 0
        assert result.epoch_trace is not None

    def test_loss_decreases(self, result):
        assert result.curve.final_loss < result.curve.initial_loss

    def test_time_to_is_product(self, result):
        e = result.epochs_to(0.10)
        if e is not None:
            assert result.time_to(0.10) == pytest.approx(e * result.time_per_iter)

    def test_unreached_tolerance_is_inf(self, result):
        # manufactured impossible tolerance
        assert result.time_to(1e-9) == math.inf or result.epochs_to(1e-9) is not None

    def test_sync_statistical_efficiency_arch_independent(self):
        runs = {
            arch: train(
                "lr", "w8a", architecture=arch, strategy="synchronous",
                scale="tiny", step_size=30.0, max_epochs=40,
            )
            for arch in ("cpu-seq", "cpu-par", "gpu")
        }
        curves = [tuple(r.curve.losses) for r in runs.values()]
        assert curves[0] == curves[1] == curves[2]
        tpis = {a: r.time_per_iter for a, r in runs.items()}
        assert tpis["gpu"] < tpis["cpu-par"] < tpis["cpu-seq"]

    def test_summary_keys(self, result):
        s = result.summary()
        assert s["task"] == "lr"
        assert "time_to_1pct_s" in s and "epochs_to_10pct" in s


class TestTrainAsync:
    def test_concurrency_mapping_affects_epochs(self):
        """cpu-seq (C=1) must reach a 10% band no later than the heavily
        stale gpu schedule at the same step."""
        runs = {
            arch: train(
                "lr", "covtype", architecture=arch, strategy="asynchronous",
                scale="tiny", step_size=1.0, max_epochs=100,
                early_stop_tolerance=None,
            )
            for arch in ("cpu-seq", "gpu")
        }
        e_seq = runs["cpu-seq"].epochs_to(0.10)
        e_gpu = runs["gpu"].epochs_to(0.10)
        assert e_seq is not None
        assert e_gpu is None or e_gpu >= e_seq

    def test_mlp_uses_transformed_dataset(self):
        r = train(
            "mlp", "w8a", architecture="cpu-par", strategy="asynchronous",
            scale="tiny", step_size=0.3, max_epochs=10,
        )
        assert r.dataset == "w8a"
        assert not math.isnan(r.curve.final_loss)

    def test_accepts_prebuilt_dataset(self):
        ds = load("w8a", "tiny")
        r = train(
            "svm", ds, architecture="cpu-seq", strategy="asynchronous",
            scale="tiny", step_size=0.1, max_epochs=5,
        )
        assert r.dataset == "w8a"

    def test_accepts_prebuilt_mlp_dataset(self):
        ds = load_mlp("w8a", "tiny")
        r = train(
            "mlp", ds, architecture="gpu", strategy="asynchronous",
            scale="tiny", step_size=0.3, max_epochs=5,
        )
        assert r.dataset == "w8a"


class TestShmBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            train("lr", "w8a", scale="tiny", backend="cuda")

    def test_shm_requires_asynchronous(self):
        with pytest.raises(ConfigurationError):
            train("lr", "w8a", strategy="synchronous", scale="tiny", backend="shm")

    def test_shm_rejects_mlp(self):
        with pytest.raises(ConfigurationError):
            train("mlp", "w8a", scale="tiny", backend="shm")

    def test_threads_requires_shm(self):
        with pytest.raises(ConfigurationError):
            train("lr", "w8a", scale="tiny", threads=2)

    def test_shm_reports_measured_wall_clock(self):
        r = train(
            "lr", "covtype", strategy="asynchronous", scale="tiny",
            step_size=0.05, max_epochs=5, early_stop_tolerance=None,
            backend="shm", threads=2,
        )
        assert r.backend == "shm"
        assert r.measured is not None
        assert r.measured["workers"] == 2
        assert r.measured["wall_seconds_total"] > 0
        # time_per_iter is the measured per-epoch wall clock here.
        assert r.time_per_iter == r.measured["wall_seconds_per_epoch"]
        assert not math.isnan(r.curve.final_loss)

    def test_shm_batch_size_wired_through(self):
        """Regression: the facade hard-coded batch_size=1 into the shm
        schedule; train(..., backend='shm', batch_size=B) must run
        measured Hogbatch."""
        r = train(
            "lr", "covtype", strategy="asynchronous", scale="tiny",
            step_size=0.05, max_epochs=5, early_stop_tolerance=None,
            backend="shm", threads=2, batch_size=16,
        )
        assert r.measured["batch_size"] == 16
        assert not r.diverged
        assert r.curve.final_loss < r.curve.initial_loss

    def test_shm_schedule_knobs_wired_through(self):
        r = train(
            "lr", "w8a", strategy="asynchronous", scale="tiny",
            step_size=0.05, max_epochs=3, early_stop_tolerance=None,
            backend="shm", threads=2,
            track_conflicts=False, epoch_timeout=45.0,
        )
        assert r.measured["track_conflicts"] is False
        assert r.measured["epoch_timeout"] == 45.0
        assert r.measured["counters"]["async.update_conflicts"] == 0

    def test_shm_defaults_to_pure_hogwild(self):
        r = train(
            "lr", "w8a", strategy="asynchronous", scale="tiny",
            step_size=0.05, max_epochs=2, early_stop_tolerance=None,
            backend="shm", threads=2,
        )
        assert r.measured["batch_size"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epoch_timeout": 5.0},
            {"track_conflicts": False},
            {"max_restarts": 1},
            {"fault_plan": FaultPlan.single("kill", 1)},
        ],
        ids=["epoch_timeout", "track_conflicts", "max_restarts", "fault_plan"],
    )
    def test_shm_only_params_rejected_on_simulated(self, kwargs):
        with pytest.raises(ConfigurationError, match="shm"):
            train("lr", "w8a", scale="tiny", **kwargs)

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(ConfigurationError, match="max_restarts"):
            train("lr", "w8a", scale="tiny", backend="shm", max_restarts=-1)

    def test_simulated_result_has_no_measured_record(self):
        r = train(
            "lr", "w8a", strategy="asynchronous", scale="tiny",
            step_size=0.1, max_epochs=5,
        )
        assert r.backend == "simulated"
        assert r.measured is None
