"""Tests for parallel SGD by model averaging."""

import numpy as np
import pytest

from repro.models import make_model
from repro.sgd import SGDConfig
from repro.sgd.averaging import (
    AveragingSchedule,
    train_model_averaging,
)
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError


@pytest.fixture()
def setup(tiny_sparse):
    model = make_model("lr", tiny_sparse)
    init = model.init_params(derive_rng(0, "avg"))
    return model, tiny_sparse, init


class TestValidation:
    def test_schedule(self):
        with pytest.raises(ConfigurationError):
            AveragingSchedule(workers=0)
        with pytest.raises(ConfigurationError):
            AveragingSchedule(workers=2, sync_every=0)

    def test_requires_serial_path(self, tiny_mlp_data):
        model = make_model("mlp", tiny_mlp_data)
        init = model.init_params(derive_rng(0, "avg"))
        with pytest.raises(ConfigurationError, match="serial_sgd_epoch"):
            train_model_averaging(
                model, tiny_mlp_data.X, tiny_mlp_data.y, init,
                SGDConfig(step_size=0.1, max_epochs=1), AveragingSchedule(workers=2),
            )


class TestTraining:
    def test_single_worker_equals_serial_sgd(self, setup):
        """workers=1 with any sync cadence is plain incremental SGD."""
        model, ds, init = setup
        res = train_model_averaging(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=0.5, max_epochs=3, seed=9),
            AveragingSchedule(workers=1),
        )
        w = init.copy()
        rng = derive_rng(9, "averaging/1/0")
        for _ in range(3):
            order = np.arange(ds.n_examples)[rng.permutation(ds.n_examples)]
            model.serial_sgd_epoch(ds.X, ds.y, order, w, 0.5)
        np.testing.assert_allclose(res.params, w, atol=1e-12)

    def test_learns_with_many_workers(self, setup):
        model, ds, init = setup
        res = train_model_averaging(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=1.0, max_epochs=25),
            AveragingSchedule(workers=8),
        )
        assert not res.diverged
        assert res.curve.final_loss < 0.5 * res.curve.initial_loss

    def test_deterministic(self, setup):
        model, ds, init = setup
        cfg = SGDConfig(step_size=0.5, max_epochs=4)
        a = train_model_averaging(
            model, ds.X, ds.y, init, cfg, AveragingSchedule(workers=4)
        )
        b = train_model_averaging(
            model, ds.X, ds.y, init, cfg, AveragingSchedule(workers=4)
        )
        np.testing.assert_array_equal(a.params, b.params)

    def test_more_workers_slower_statistically(self, setup):
        """The classic averaging trade-off: after equal epochs, many
        replicas over small partitions lag a single serial pass."""
        model, ds, init = setup
        losses = {}
        for workers in (1, 32):
            res = train_model_averaging(
                model, ds.X, ds.y, init,
                SGDConfig(step_size=1.0, max_epochs=6),
                AveragingSchedule(workers=workers),
            )
            losses[workers] = res.curve.final_loss
        assert losses[1] <= losses[32] + 1e-9

    def test_sync_cadence_matters(self, setup):
        model, ds, init = setup
        outs = {}
        for cadence in (1, 5):
            res = train_model_averaging(
                model, ds.X, ds.y, init,
                SGDConfig(step_size=1.0, max_epochs=5),
                AveragingSchedule(workers=8, sync_every=cadence),
            )
            outs[cadence] = res.params
        assert not np.allclose(outs[1], outs[5])

    def test_divergence_reported(self, setup):
        model, ds, init = setup
        res = train_model_averaging(
            model, ds.X, ds.y, init,
            SGDConfig(step_size=1e308, max_epochs=10, divergence_factor=5.0),
            AveragingSchedule(workers=4),
        )
        assert res.diverged
