"""Tests for the configuration advisor."""

import math

import pytest

from repro.datasets import load
from repro.experiments.common import ExperimentContext
from repro.sgd.advisor import (
    Advice,
    HourlyCost,
    heuristic_advice,
    measure_advice,
)
from repro.utils.errors import ConfigurationError


class TestHeuristicAdvice:
    def test_mlp_gets_sync_gpu(self, tiny_mlp_data):
        advice = heuristic_advice(tiny_mlp_data, task="mlp")
        assert advice == Advice(
            strategy="synchronous", architecture="gpu", rationale=advice.rationale
        )
        assert "4x" in advice.rationale or "4X" in advice.rationale

    def test_dense_low_dim_gets_sequential_cpu(self, tiny_dense):
        advice = heuristic_advice(tiny_dense, task="lr")
        assert advice.strategy == "asynchronous"
        assert advice.architecture == "cpu-seq"
        assert "covtype" in advice.rationale

    def test_sparse_gets_parallel_cpu(self):
        ds = load("news", "tiny")
        advice = heuristic_advice(ds, task="svm")
        assert advice.strategy == "asynchronous"
        assert advice.architecture == "cpu-par"
        assert "sparse" in advice.rationale.lower()

    def test_rationales_cite_evidence(self, tiny_dense):
        for ds, task in ((tiny_dense, "lr"), (load("rcv1", "tiny"), "lr")):
            advice = heuristic_advice(ds, task)
            assert "Table" in advice.rationale


class TestHourlyCost:
    def test_gpu_includes_host_share(self):
        cost = HourlyCost(cpu_machine=2.0, gpu_card=1.0)
        assert cost.rate("gpu") == pytest.approx(1.2)
        assert cost.rate("cpu-par") == 2.0
        assert cost.rate("cpu-seq") == 2.0


class TestMeasuredAdvice:
    @pytest.fixture(scope="class")
    def advice(self):
        ctx = ExperimentContext(
            scale="tiny",
            tolerance=0.10,
            sync_max_epochs=250,
            async_max_epochs=80,
        )
        return measure_advice("lr", "w8a", ctx=ctx)

    def test_covers_all_six_configurations(self, advice):
        assert len(advice.ranking) == 6
        combos = {(r.strategy, r.architecture) for r in advice.ranking}
        assert len(combos) == 6

    def test_ranking_sorted(self, advice):
        times = [r.time_to_convergence for r in advice.ranking]
        assert times == sorted(times)

    def test_fastest_is_finite(self, advice):
        assert math.isfinite(advice.fastest.time_to_convergence)

    def test_cheapest_consistent_with_costs(self, advice):
        cheapest = advice.cheapest
        for r in advice.ranking:
            if math.isfinite(r.dollars_to_convergence):
                assert cheapest.dollars_to_convergence <= r.dollars_to_convergence

    def test_no_convergence_raises(self):
        from repro.sgd.advisor import MeasuredAdvice, RankedConfig

        empty = MeasuredAdvice(task="lr", dataset="x", tolerance=0.01)
        empty.ranking = [
            RankedConfig("synchronous", "gpu", math.inf, math.inf)
        ]
        with pytest.raises(ConfigurationError):
            _ = empty.fastest


class TestCostOverride:
    def test_expensive_gpu_changes_cheapest(self):
        """With an absurd GPU price the cheapest configuration must be
        a CPU one, even if the GPU stays fastest."""
        ctx = ExperimentContext(
            scale="tiny", tolerance=0.10, sync_max_epochs=250, async_max_epochs=80
        )
        pricy = measure_advice(
            "lr", "w8a", ctx=ctx, cost=HourlyCost(cpu_machine=0.01, gpu_card=10_000.0)
        )
        assert pricy.cheapest.architecture != "gpu"
