"""Tests for the Buckwild-style low-precision extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asyncsim import AsyncSchedule
from repro.sgd.lowprec import (
    BFloat16Quantizer,
    FixedPointQuantizer,
    Float32Quantizer,
    make_quantizer,
    run_quantized_epoch,
)
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError


class TestQuantizers:
    def test_float32_idempotent(self, rng):
        q = Float32Quantizer()
        x = rng.standard_normal(100)
        once = q.quantize(x)
        np.testing.assert_array_equal(once, q.quantize(once))

    def test_float32_error_bound(self, rng):
        q = Float32Quantizer()
        x = rng.standard_normal(1000)
        err = np.abs(q.quantize(x) - x)
        assert err.max() < 1e-6

    def test_bfloat16_idempotent(self, rng):
        q = BFloat16Quantizer()
        x = rng.standard_normal(100)
        once = q.quantize(x)
        np.testing.assert_array_equal(once, q.quantize(once))

    def test_bfloat16_relative_error(self, rng):
        q = BFloat16Quantizer()
        x = rng.standard_normal(1000) * 100
        rel = np.abs(q.quantize(x) - x) / np.abs(x)
        assert rel.max() < 2 ** -8  # 8-bit mantissa

    def test_bfloat16_preserves_specials(self):
        q = BFloat16Quantizer()
        out = q.quantize(np.array([0.0, 1.0, -1.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 1.0, -1.0, 2.0])

    @given(st.integers(2, 16))
    @settings(max_examples=15, deadline=None)
    def test_fixed_point_grid(self, bits):
        q = FixedPointQuantizer(bits=bits, clip=4.0, seed=1)
        x = np.linspace(-3, 3, 101)
        out = q.quantize(x)
        grid = (2 ** (bits - 1) - 1) / 4.0
        np.testing.assert_allclose(out * grid, np.round(out * grid), atol=1e-9)

    def test_fixed_point_unbiased(self):
        """Stochastic rounding: E[Q(x)] = x (Buckwild's key property)."""
        q = FixedPointQuantizer(bits=4, clip=4.0, seed=0)
        x = np.full(200_000, 0.7)
        mean = q.quantize(x).mean()
        assert abs(mean - 0.7) < 0.01

    def test_fixed_point_clips(self):
        q = FixedPointQuantizer(bits=8, clip=1.0, seed=0)
        out = q.quantize(np.array([5.0, -5.0]))
        assert out.max() <= 1.0 + 1e-9 and out.min() >= -1.0 - 1e-9

    def test_factory(self):
        assert make_quantizer("float32").bits == 32
        assert make_quantizer("bfloat16").bits == 16
        assert make_quantizer("fixed8").bits == 8
        with pytest.raises(ConfigurationError):
            make_quantizer("int3.5")
        with pytest.raises(ConfigurationError):
            make_quantizer("fixedx")


class TestQuantizedEpoch:
    def test_float32_tracks_full_precision(self, lr_tiny):
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        from repro.asyncsim import run_async_epoch

        full = w0.copy()
        run_async_epoch(
            model, ds.X, ds.y, full, 0.5, AsyncSchedule(concurrency=8),
            derive_rng(1, "q"),
        )
        quant = w0.copy()
        run_quantized_epoch(
            model, ds.X, ds.y, quant, 0.5, AsyncSchedule(concurrency=8),
            derive_rng(1, "q"), Float32Quantizer(),
        )
        assert np.abs(full - quant).max() < 1e-4

    def test_precision_degrades_final_loss_monotonically(self, lr_tiny):
        """Fewer bits -> equal-or-worse loss after the same epochs."""
        model, ds = lr_tiny
        w0 = model.init_params(derive_rng(0, "w"))
        losses = {}
        for kind in ("float32", "bfloat16", "fixed6"):
            w = w0.copy()
            q = make_quantizer(kind)
            rng = derive_rng(2, "prec")
            for _ in range(12):
                run_quantized_epoch(
                    model, ds.X, ds.y, w, 0.5, AsyncSchedule(concurrency=4), rng, q
                )
            losses[kind] = model.loss(ds.X, ds.y, w)
        assert losses["float32"] <= losses["fixed6"] + 0.05
        assert losses["float32"] < losses["bfloat16"] + 0.05

    def test_model_stays_on_grid(self, lr_tiny):
        model, ds = lr_tiny
        w = model.init_params(derive_rng(0, "w"))
        q = FixedPointQuantizer(bits=8, clip=8.0, seed=3)
        run_quantized_epoch(
            model, ds.X, ds.y, w, 0.3, AsyncSchedule(concurrency=16),
            derive_rng(0, "g"), q,
        )
        np.testing.assert_array_equal(w, q.quantize(w))

    def test_rejects_batched_schedule(self, lr_tiny):
        model, ds = lr_tiny
        w = model.init_params(derive_rng(0, "w"))
        with pytest.raises(ConfigurationError):
            run_quantized_epoch(
                model, ds.X, ds.y, w, 0.3,
                AsyncSchedule(concurrency=4, batch_size=8),
                derive_rng(0, "g"), Float32Quantizer(),
            )
