"""Tests for SGDConfig and the protocol constants."""

import pytest

from repro.sgd import STEP_GRID, TOLERANCES, SGDConfig
from repro.utils.errors import ConfigurationError


class TestProtocolConstants:
    def test_paper_tolerances(self):
        assert TOLERANCES == (0.10, 0.05, 0.02, 0.01)

    def test_step_grid_powers_of_ten(self):
        assert STEP_GRID[0] == pytest.approx(1e-6)
        ratios = [b / a for a, b in zip(STEP_GRID, STEP_GRID[1:])]
        assert all(r == pytest.approx(10.0) for r in ratios)


class TestSGDConfig:
    def test_defaults(self):
        c = SGDConfig(step_size=0.1)
        assert c.max_epochs == 200
        assert c.batch_size == 512  # the paper's Hogbatch size
        assert c.eval_every == 1

    def test_frozen(self):
        c = SGDConfig(step_size=0.1)
        with pytest.raises(AttributeError):
            c.step_size = 0.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step_size": 0.0},
            {"step_size": -1.0},
            {"step_size": 0.1, "max_epochs": 0},
            {"step_size": 0.1, "batch_size": 0},
            {"step_size": 0.1, "eval_every": 0},
            {"step_size": 0.1, "divergence_factor": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SGDConfig(**kwargs)
