"""Failure-injection and pathological-input tests.

A library gets adopted when the unhappy paths are as deliberate as the
happy ones: degenerate datasets, adversarial schedules, numerically
hostile inputs and resource-shaped extremes must produce defined
behaviour (a clear error or a sensible result), never silent nonsense.
"""

import numpy as np
import pytest

from repro.asyncsim import AsyncSchedule, run_async_epoch
from repro.datasets import Dataset
from repro.datasets.profiles import DatasetProfile
from repro.hardware import AsyncWorkload, CpuModel, GpuModel
from repro.linalg import CSRMatrix, Trace, recording
from repro.models import LogisticRegression, make_model
from repro.sgd import SGDConfig, train_synchronous
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError, DataFormatError


def _dataset(X, y, name="degenerate"):
    n, d = X.shape
    nnz = X.row_nnz if isinstance(X, CSRMatrix) else np.full(n, d)
    return Dataset(
        name=name,
        X=X,
        y=y,
        profile=DatasetProfile(
            name=name,
            n_examples=n,
            n_features=d,
            nnz_min=int(nnz.min()),
            nnz_avg=float(max(nnz.mean(), 1e-9)),
            nnz_max=int(nnz.max()),
            mlp_arch=(d, 4, 2),
            mlp_sparsity_pct=100.0,
        ),
    )


class TestDegenerateData:
    def test_all_zero_feature_matrix_trains_flat(self):
        """Zero features: gradients vanish, loss stays at the initial
        value — no NaNs, no crash."""
        X = CSRMatrix.from_rows(
            [(np.array([], dtype=np.int64), np.array([]))] * 16, n_cols=8
        )
        y = np.array([1.0, -1.0] * 8)
        model = LogisticRegression(8)
        w = model.init_params(derive_rng(0, "z"))
        res = train_synchronous(model, X, y, w, SGDConfig(step_size=1.0, max_epochs=5))
        assert res.curve.final_loss == pytest.approx(res.curve.initial_loss)

    def test_single_example_dataset(self):
        X = CSRMatrix.from_rows([(np.array([0, 2]), np.array([1.0, -1.0]))], 4)
        y = np.array([1.0])
        model = LogisticRegression(4)
        w = model.init_params(derive_rng(0, "one"))
        run_async_epoch(
            model, X, y, w, 0.5, AsyncSchedule(concurrency=8), derive_rng(0, "s")
        )
        assert np.all(np.isfinite(w))

    def test_single_class_labels_learnable(self):
        """All-positive labels: the model should drive the loss toward
        zero rather than misbehaving on the missing class."""
        rng = derive_rng(0, "sc")
        X = np.abs(rng.standard_normal((32, 6)))
        y = np.ones(32)
        model = LogisticRegression(6)
        w = model.init_params(derive_rng(0, "w"))
        for _ in range(30):
            w -= 1.0 * model.full_grad(X, y, w)
        assert model.loss(X, y, w) < 0.2

    def test_duplicate_examples(self):
        rng = derive_rng(0, "dup")
        row = np.abs(rng.standard_normal(5))
        X = np.tile(row, (10, 1))
        y = np.ones(10)
        model = LogisticRegression(5)
        w = model.init_params(derive_rng(0, "w"))
        w -= model.full_grad(X, y, w)
        assert np.all(np.isfinite(w))

    def test_extreme_feature_values(self):
        """Huge magnitudes must saturate the stable losses, not overflow."""
        X = np.array([[1e8], [-1e8]])
        y = np.array([1.0, -1.0])
        model = LogisticRegression(1)
        w = np.array([1.0])
        loss = model.loss(X, y, w)
        grad = model.full_grad(X, y, w)
        assert np.isfinite(loss) and np.all(np.isfinite(grad))


class TestHostileSchedules:
    def test_concurrency_far_beyond_examples(self, lr_tiny):
        model, ds = lr_tiny
        w = model.init_params(derive_rng(0, "w"))
        run_async_epoch(
            model, ds.X, ds.y, w, 0.1,
            AsyncSchedule(concurrency=10**7), derive_rng(0, "s"),
        )
        assert np.all(np.isfinite(w))

    def test_pipeline_lag_beyond_epoch(self, lr_tiny):
        model, ds = lr_tiny
        w = model.init_params(derive_rng(0, "w"))
        run_async_epoch(
            model, ds.X, ds.y, w, 0.05,
            AsyncSchedule(concurrency=10**6, pipeline_block=2),
            derive_rng(0, "s"),
        )
        assert np.all(np.isfinite(w))

    def test_batch_size_beyond_examples(self, tiny_mlp_data):
        model = make_model("mlp", tiny_mlp_data)
        w = model.init_params(derive_rng(0, "w"))
        run_async_epoch(
            model, tiny_mlp_data.X, tiny_mlp_data.y, w, 0.1,
            AsyncSchedule(concurrency=1, batch_size=10**6),
            derive_rng(0, "s"),
        )
        assert np.all(np.isfinite(w))


class TestHardwareModelExtremes:
    def test_empty_trace_costs_zero(self):
        assert CpuModel().sync_epoch_time(Trace(), 56, 1e6) == 0.0
        assert GpuModel().sync_epoch_time(Trace()) == 0.0

    def test_zero_byte_workload(self, lr_tiny):
        model, ds = lr_tiny
        w = AsyncWorkload.for_linear(ds, model)
        from dataclasses import replace

        tiny = replace(w, flops_per_step=0.0, data_bytes_per_step=0.0)
        assert CpuModel().async_epoch_time(tiny, 56) > 0  # overheads remain

    def test_one_core_machine(self):
        """A degenerate 1-core, 1-thread spec must still price work."""
        from dataclasses import replace

        from repro.hardware import XEON_E5_2660V4_DUAL

        tiny_spec = replace(
            XEON_E5_2660V4_DUAL, sockets=1, cores_per_socket=1, threads_per_core=1
        )
        cpu = CpuModel(spec=tiny_spec)
        with recording() as tr:
            from repro.linalg import gemm

            gemm(np.ones((8, 8)), np.ones((8, 8)))
        assert cpu.sync_epoch_time(tr, 56, 1e6) > 0  # clipped to 1 thread


class TestMalformedInputsAcrossStack:
    def test_csr_wrong_dtype_coerced_or_rejected(self):
        m = CSRMatrix(
            np.array([0, 1]), np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int32), (1, 2),
        )
        assert m.data.dtype == np.float64  # coerced on construction

    def test_labels_with_nan_rejected_by_validation(self):
        from repro.utils.validation import check_labels

        with pytest.raises(ConfigurationError):
            check_labels("y", np.array([1.0, np.nan]), 2)

    def test_mismatched_dataset_shapes_rejected(self):
        X = CSRMatrix.from_dense(np.ones((4, 3)))
        with pytest.raises(ConfigurationError):
            _dataset(X, np.ones(5))

    def test_libsvm_binary_garbage(self):
        import io

        from repro.datasets import parse_libsvm_lines

        with pytest.raises(DataFormatError):
            parse_libsvm_lines(io.StringIO("\x00\x01garbage\n"))
