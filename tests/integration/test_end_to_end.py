"""End-to-end integration tests across the whole stack.

These exercise the complete pipeline — generator -> model -> SGD
variant -> asynchrony simulator -> hardware model -> convergence
protocol — the way a library user would drive it.
"""


import pytest

import repro


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("train", "grid_search", "load", "make_model", "CpuModel"):
            assert hasattr(repro, name)

    def test_quickstart_docstring_flow(self):
        result = repro.train(
            "lr", "w8a", architecture="cpu-par", strategy="asynchronous",
            scale="tiny", step_size=1.0, max_epochs=60,
        )
        assert isinstance(result, repro.TrainResult)
        assert result.time_per_iter > 0
        assert result.curve.final_loss < result.curve.initial_loss


class TestCrossStrategyComparison:
    """The paper's central decision problem, end to end on one dataset."""

    @pytest.fixture(scope="class")
    def runs(self):
        common = dict(scale="tiny", max_epochs=150, seed=0)
        return {
            "sync-gpu": repro.train(
                "lr", "w8a", architecture="gpu", strategy="synchronous",
                step_size=100.0, **common,
            ),
            "async-seq": repro.train(
                "lr", "w8a", architecture="cpu-seq", strategy="asynchronous",
                step_size=1.0, **common,
            ),
            "async-par": repro.train(
                "lr", "w8a", architecture="cpu-par", strategy="asynchronous",
                step_size=1.0, **common,
            ),
        }

    def test_all_converge_to_10pct(self, runs):
        for name, r in runs.items():
            assert r.epochs_to(0.10) is not None, name

    def test_shared_initial_loss(self, runs):
        """The paper's methodology: same init across configurations."""
        inits = {round(r.curve.initial_loss, 12) for r in runs.values()}
        assert len(inits) == 1

    def test_shared_optimum(self, runs):
        opts = {r.optimal_loss for r in runs.values()}
        assert len(opts) == 1

    def test_incremental_beats_batch_statistically(self, runs):
        """Bertsekas: incremental SGD converges in far fewer epochs than
        batch GD when far from the optimum (Section III)."""
        e_async = runs["async-seq"].epochs_to(0.10)
        e_sync = runs["sync-gpu"].epochs_to(0.10)
        assert e_async < e_sync

    def test_time_to_convergence_composition(self, runs):
        for r in runs.values():
            e = r.epochs_to(0.10)
            if e is not None:
                assert r.time_to(0.10) == pytest.approx(e * r.time_per_iter)


class TestLibsvmRoundtripTraining:
    def test_user_supplied_file_flow(self, tmp_path):
        """Write a dataset as LIBSVM, read it back, train on it."""
        ds = repro.load("w8a", "tiny")
        path = tmp_path / "data.libsvm"
        repro.datasets.write_libsvm(ds, path)
        loaded = repro.read_libsvm(path, n_features=ds.n_features)
        result = repro.train(
            "svm", loaded, architecture="cpu-seq", strategy="asynchronous",
            step_size=0.3, max_epochs=40,
        )
        assert result.curve.final_loss < result.curve.initial_loss


class TestDeterminism:
    def test_identical_reruns(self):
        a = repro.train(
            "svm", "real-sim", architecture="gpu", strategy="asynchronous",
            scale="tiny", step_size=0.3, max_epochs=15, seed=5,
        )
        b = repro.train(
            "svm", "real-sim", architecture="gpu", strategy="asynchronous",
            scale="tiny", step_size=0.3, max_epochs=15, seed=5,
        )
        assert a.curve.losses == b.curve.losses
        assert a.time_per_iter == b.time_per_iter

    def test_seed_isolation(self):
        a = repro.train(
            "svm", "real-sim", architecture="gpu", strategy="asynchronous",
            scale="tiny", step_size=0.3, max_epochs=15, seed=5,
        )
        c = repro.train(
            "svm", "real-sim", architecture="gpu", strategy="asynchronous",
            scale="tiny", step_size=0.3, max_epochs=15, seed=6,
        )
        assert a.curve.losses != c.curve.losses


class TestHardwareStatisticalDecomposition:
    def test_async_tpi_independent_of_losses(self):
        """Hardware efficiency comes from the machine model, so two runs
        with different steps share the same time-per-iteration."""
        kwargs = dict(
            architecture="cpu-par", strategy="asynchronous", scale="tiny",
            max_epochs=10,
        )
        a = repro.train("lr", "news", step_size=0.1, **kwargs)
        b = repro.train("lr", "news", step_size=1.0, **kwargs)
        assert a.time_per_iter == b.time_per_iter
        assert a.curve.losses != b.curve.losses

    def test_paper_machines_are_default(self):
        r = repro.train(
            "lr", "covtype", architecture="gpu", strategy="synchronous",
            scale="tiny", step_size=100.0, max_epochs=5,
        )
        # K80-priced epochs are sub-second for LR at paper scale
        assert 1e-5 < r.time_per_iter < 1.0
