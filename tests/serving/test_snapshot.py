"""Tests for the seqlock snapshot protocol.

The torn-read regression test is the load-bearing one: a reader
hammering ``snapshot()`` while a writer publishes as fast as it can must
never observe a mixed-version vector.  The writer publishes
*constant-fill* vectors (every coordinate equals the version number), so
any torn copy — coordinates from two different publishes — is instantly
detectable as a non-constant vector.
"""

import json
import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from repro.datasets import load
from repro.models import make_model
from repro.parallel import ShmSchedule, train_shm
from repro.serving.snapshot import (
    DESCRIPTOR_SCHEMA,
    ModelSnapshot,
    ShmTrainHandle,
    SnapshotPublisher,
)
from repro.sgd import SGDConfig
from repro.telemetry import Telemetry, keys
from repro.utils.errors import ConfigurationError, SnapshotUnavailableError
from repro.utils.rng import derive_rng

N_PARAMS = 64


@pytest.fixture()
def publisher():
    pub = SnapshotPublisher.create(N_PARAMS, meta={"task": "lr"})
    yield pub
    pub.close()


class TestPublisher:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            SnapshotPublisher.create(0)

    def test_publish_bumps_version_and_keeps_seq_even(self, publisher):
        assert publisher.version == 0
        v1 = publisher.publish(np.ones(N_PARAMS), epoch=1, loss=0.5)
        v2 = publisher.publish(np.full(N_PARAMS, 2.0), epoch=2, loss=0.25)
        assert (v1, v2) == (1, 2)
        assert publisher.version == 2
        assert publisher._ints[0] % 2 == 0  # seq even: no publish in flight

    def test_publish_rejects_wrong_shape(self, publisher):
        with pytest.raises(ConfigurationError):
            publisher.publish(np.ones(N_PARAMS + 1))

    def test_publish_after_close_fails(self):
        pub = SnapshotPublisher.create(N_PARAMS)
        pub.close()
        with pytest.raises(ConfigurationError):
            pub.publish(np.ones(N_PARAMS))

    def test_descriptor_file(self, tmp_path):
        path = tmp_path / "snap.json"
        with SnapshotPublisher.create(
            N_PARAMS, descriptor=path, meta={"task": "svm"}
        ) as pub:
            doc = json.loads(path.read_text())
            assert doc["schema"] == DESCRIPTOR_SCHEMA
            assert doc["segment"] == pub.segment_name
            assert doc["n_params"] == N_PARAMS
            assert doc["meta"] == {"task": "svm"}


class TestHandle:
    def test_cold_start_is_structured_and_retriable(self, publisher):
        with ShmTrainHandle.attach(publisher) as handle:
            with pytest.raises(SnapshotUnavailableError) as exc:
                handle.snapshot()
            desc = exc.value.describe()
            assert desc["reason"] == "cold-start"
            assert desc["retriable"] is True
            assert desc["type"] == "snapshot-unavailable"

    def test_roundtrip_values_and_metadata(self, publisher):
        params = np.linspace(-1.0, 1.0, N_PARAMS)
        publisher.publish(params, epoch=7, loss=0.125)
        with ShmTrainHandle.attach(publisher) as handle:
            snap = handle.snapshot()
            np.testing.assert_array_equal(snap.params, params)
            assert snap.version == 1
            assert snap.epoch == 7
            assert snap.loss == 0.125
            assert snap.meta["task"] == "lr"
            assert snap.retries == 0
            assert 0.0 <= snap.age_seconds < 60.0

    def test_snapshot_is_a_private_copy(self, publisher):
        publisher.publish(np.ones(N_PARAMS))
        with ShmTrainHandle.attach(publisher) as handle:
            snap = handle.snapshot()
            publisher.publish(np.full(N_PARAMS, 9.0))
            np.testing.assert_array_equal(snap.params, np.ones(N_PARAMS))

    def test_attach_by_descriptor_and_segment_name(self, tmp_path):
        path = tmp_path / "snap.json"
        with SnapshotPublisher.create(N_PARAMS, descriptor=path) as pub:
            pub.publish(np.full(N_PARAMS, 3.0))
            for source in (path, pub.segment_name):
                with ShmTrainHandle.attach(source) as handle:
                    assert handle.snapshot().params[0] == 3.0

    def test_attach_missing_descriptor(self, tmp_path):
        with pytest.raises(SnapshotUnavailableError) as exc:
            ShmTrainHandle.attach(tmp_path / "gone.json")
        assert exc.value.reason == "no-descriptor"
        assert exc.value.retriable

    def test_attach_missing_segment(self):
        with pytest.raises(SnapshotUnavailableError) as exc:
            ShmTrainHandle.attach("psm_repro_no_such_segment")
        assert exc.value.reason == "no-segment"

    def test_attach_rejects_non_descriptor_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ConfigurationError):
            ShmTrainHandle.attach(path)

    def test_attach_rejects_param_count_mismatch(self, tmp_path, publisher):
        path = tmp_path / "snap.json"
        path.write_text(
            json.dumps(
                {
                    "schema": DESCRIPTOR_SCHEMA,
                    "segment": publisher.segment_name,
                    "n_params": N_PARAMS + 1,
                }
            )
        )
        with pytest.raises(ConfigurationError):
            ShmTrainHandle.attach(path)

    def test_reader_survives_publisher_unlink(self):
        pub = SnapshotPublisher.create(N_PARAMS)
        pub.publish(np.full(N_PARAMS, 5.0), epoch=3)
        handle = ShmTrainHandle.attach(pub)
        pub.close()  # unlinks the segment
        snap = handle.snapshot()  # mapping survives: last model servable
        assert snap.params[0] == 5.0
        assert handle.trainer_finished
        with pytest.raises(SnapshotUnavailableError):
            ShmTrainHandle.attach(handle._shm.name)  # new attaches do fail
        handle.close()


class _RetryForcingHandle(ShmTrainHandle):
    """Publishes mid-copy, forcing the seqlock retry path deterministically."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.intrusions = 0
        self._intrude = None

    def arm(self, publisher, payloads):
        self._intrude = (publisher, list(payloads))

    def _copy_body(self):
        copied = super()._copy_body()
        if self._intrude is not None and self._intrude[1]:
            pub, payloads = self._intrude
            pub.publish(payloads.pop(0))  # overlaps this read: must retry
            self.intrusions += 1
        return copied


class TestSeqlockRetry:
    def test_overlapping_publish_forces_retry(self, publisher):
        tel = Telemetry()
        publisher.publish(np.full(N_PARAMS, 1.0))
        handle = _RetryForcingHandle(
            ShmTrainHandle.attach(publisher)._shm, N_PARAMS, telemetry=tel
        )
        handle.arm(publisher, [np.full(N_PARAMS, 2.0), np.full(N_PARAMS, 3.0)])
        snap = handle.snapshot()
        # Two intruding publishes -> two retries; the returned snapshot
        # is the final consistent state, not any torn intermediate.
        assert handle.intrusions == 2
        assert snap.retries == 2
        assert snap.version == 3
        np.testing.assert_array_equal(snap.params, np.full(N_PARAMS, 3.0))
        counters = tel.counters()
        assert counters[keys.SERVE_SNAPSHOT_RETRIES] == 2
        assert counters[keys.SERVE_SNAPSHOT_READS] == 1
        handle.close()

    def test_wedged_publisher_exhausts_retries(self, publisher):
        publisher.publish(np.ones(N_PARAMS))
        with ShmTrainHandle.attach(publisher) as handle:
            handle.MAX_RETRIES = 3
            publisher._ints[0] += 1  # simulate a writer dead at odd seq
            try:
                with pytest.raises(SnapshotUnavailableError) as exc:
                    handle.snapshot()
                assert exc.value.reason == "retry-exhausted"
            finally:
                publisher._ints[0] -= 1  # restore for clean close


def _hammer_writer(segment: str, n_params: int, rounds: int) -> None:
    """Child process: publish constant-fill vectors as fast as possible."""
    from multiprocessing import shared_memory

    from repro.serving.snapshot import SnapshotPublisher

    shm = shared_memory.SharedMemory(name=segment)
    pub = SnapshotPublisher(shm, n_params, {}, None, owns_segment=False)
    vec = np.empty(n_params, dtype=np.float64)
    for i in range(1, rounds + 1):
        vec.fill(float(i))
        pub.publish(vec, epoch=i)
    pub._ints = pub._floats = pub._body = None
    shm.close()


class TestTornReadRegression:
    def test_concurrent_reader_never_sees_mixed_versions(self):
        """The satellite regression test: constant-fill publishes under a
        hammering reader.  Every snapshot must be internally constant
        (all coordinates equal) and match its version number — a torn
        read would mix two fill values."""
        n_params = 4096  # large body: the copy window is wide enough to tear
        rounds = 400
        tel = Telemetry()
        pub = SnapshotPublisher.create(n_params)
        handle = ShmTrainHandle.attach(pub, telemetry=tel)
        ctx = mp.get_context("spawn")
        writer = ctx.Process(
            target=_hammer_writer, args=(pub.segment_name, n_params, rounds)
        )
        writer.start()
        seen_versions = []
        try:
            deadline = time.time() + 60.0
            while time.time() < deadline:
                try:
                    snap = handle.snapshot()
                except SnapshotUnavailableError as err:
                    assert err.reason == "cold-start"
                    continue
                unique = np.unique(snap.params)
                assert unique.size == 1, (
                    f"torn read at version {snap.version}: "
                    f"{unique.size} distinct fill values {unique[:4]}"
                )
                assert unique[0] == float(snap.version)
                assert snap.epoch == snap.version
                seen_versions.append(snap.version)
                if snap.version >= rounds:
                    break
        finally:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        assert seen_versions, "reader never observed a snapshot"
        assert seen_versions == sorted(seen_versions), "versions went backwards"
        assert seen_versions[-1] == rounds
        # The retry counter is asserted *present* in telemetry (the
        # protocol records it); whether it fired depends on timing luck,
        # which TestSeqlockRetry pins down deterministically.
        counters = tel.counters()
        assert counters[keys.SERVE_SNAPSHOT_READS] == len(seen_versions)
        assert counters.get(keys.SERVE_SNAPSHOT_RETRIES, 0) == handle.retries
        handle.close()
        pub.close()


class TestLiveTraining:
    def test_snapshot_during_train_shm(self):
        """End-to-end: hammer snapshot() while train_shm workers run.

        The publisher is wired into the epoch loop, so versions climb
        with epochs and the final snapshot equals the returned model.
        """
        ds = load("w8a", "tiny")
        model = make_model("lr", ds)
        init = model.init_params(derive_rng(7, "servetest"))
        tel = Telemetry()
        pub = SnapshotPublisher.create(
            model.n_params, meta={"task": "lr", "n_features": ds.n_features}
        )
        handle = ShmTrainHandle.attach(pub, telemetry=tel)
        observed: list[ModelSnapshot] = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    observed.append(handle.snapshot())
                except SnapshotUnavailableError:
                    pass
                time.sleep(0.001)

        reader = threading.Thread(target=hammer, daemon=True)
        reader.start()
        try:
            res = train_shm(
                model,
                ds.X,
                ds.y,
                init,
                SGDConfig(step_size=0.05, max_epochs=8, seed=99),
                ShmSchedule(workers=2),
                snapshot=pub,
            )
        finally:
            stop.set()
            reader.join(timeout=10)
        final = handle.snapshot()
        np.testing.assert_array_equal(final.params, res.params)
        assert final.version == pub.version
        # publish(init) at version 1, then one publish per finite epoch
        assert final.version >= 1 + res.epochs_run
        versions = [s.version for s in observed]
        assert versions == sorted(versions)
        assert tel.counters()[keys.SERVE_SNAPSHOT_READS] == handle.reads
        handle.close()
        pub.close()
