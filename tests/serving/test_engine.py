"""Tests for the micro-batched scoring engine and hot-swap refresher."""

import threading
import time

import numpy as np
import pytest

from repro.datasets import load
from repro.models import LinearSVM, LogisticRegression
from repro.serving import (
    ArtifactSource,
    LoadGenerator,
    ScoringEngine,
    ServedModel,
    ShmTrainHandle,
    SnapshotPublisher,
    SnapshotRefresher,
)
from repro.sgd import save_results, train
from repro.telemetry import Telemetry, keys
from repro.utils.errors import (
    ConfigurationError,
    DataFormatError,
    SnapshotUnavailableError,
)

N = 6
W = np.array([0.5, -1.0, 0.25, 0.0, 2.0, -0.5])


def _engine(task="lr", **kw):
    eng = ScoringEngine(task, N, max_delay=0.001, **kw)
    eng.install(ServedModel(params=W, version=1, source="artifact"))
    return eng


class TestValidation:
    def test_rejects_unservable_task(self):
        with pytest.raises(ConfigurationError):
            ScoringEngine("mlp", N)

    @pytest.mark.parametrize(
        "bad",
        [
            [1.0, 2.0, 3.0],  # wrong dense width
            {"indices": [0, N], "values": [1.0, 1.0]},  # index out of range
            {"indices": [2, 2], "values": [1.0, 1.0]},  # duplicate index
            {"indices": [1]},  # missing values
            "nonsense",
        ],
    )
    def test_malformed_examples(self, bad):
        with pytest.raises(DataFormatError):
            _engine().score([bad])

    def test_empty_request(self):
        with pytest.raises(DataFormatError):
            _engine().score([])


class TestScoring:
    def test_margins_match_model_predict(self):
        """Serving margins equal the training-side model's, dense and sparse."""
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((5, N))
        eng = _engine()
        resp = eng.score([row for row in dense])
        model = LogisticRegression(N)
        expected = model.predict_margin(dense, W)
        got = np.array([r.margin for r in resp.results])
        np.testing.assert_allclose(got, expected, rtol=0, atol=1e-12)
        probs = np.array([r.prob for r in resp.results])
        np.testing.assert_allclose(probs, 1.0 / (1.0 + np.exp(-expected)), atol=1e-12)

    def test_sparse_and_dense_forms_agree(self):
        eng = _engine()
        dense = [0.0, 3.0, 0.0, 0.0, -2.0, 0.0]
        sparse = {"indices": [1, 4], "values": [3.0, -2.0]}
        unsorted = {"indices": [4, 1], "values": [-2.0, 3.0]}  # sorted for us
        pair = ([1, 4], [3.0, -2.0])
        resp = eng.score([dense, sparse, unsorted, pair])
        margins = {r.margin for r in resp.results}
        assert len(margins) == 1

    def test_svm_has_no_probability(self):
        resp = _engine("svm").score([[1.0] * N])
        assert resp.results[0].prob is None
        expected = LinearSVM(N).predict_margin(np.ones((1, N)), W)[0]
        assert resp.results[0].margin == pytest.approx(expected, abs=1e-12)

    def test_labels_follow_margin_sign(self):
        resp = _engine().score(
            [{"indices": [4], "values": [1.0]}, {"indices": [1], "values": [1.0]}]
        )
        assert [r.label for r in resp.results] == [1, -1]

    def test_cold_start_is_retriable(self):
        eng = ScoringEngine("lr", N)
        with pytest.raises(SnapshotUnavailableError) as exc:
            eng.score([[0.0] * N])
        assert exc.value.reason == "cold-start"
        assert exc.value.retriable


class TestHotSwap:
    def test_install_is_versioned(self):
        eng = _engine()
        assert not eng.install(ServedModel(params=W, version=1, source="artifact"))
        assert eng.install(ServedModel(params=2 * W, version=2, source="artifact"))
        assert eng.active.version == 2
        assert eng.stats().hot_swaps == 1

    def test_install_rejects_wrong_width(self):
        with pytest.raises(ConfigurationError):
            _engine().install(
                ServedModel(params=np.ones(N + 1), version=9, source="artifact")
            )

    def test_swap_mid_flight_never_drops_requests(self):
        """Requests racing a storm of hot-swaps all complete, each under
        a single coherent version (the one its batch pinned)."""
        eng = _engine()
        stop = threading.Event()

        def swapper():
            version = 2
            while not stop.is_set():
                eng.install(
                    ServedModel(params=W * version, version=version, source="artifact")
                )
                version += 1
        x = {"indices": [0], "values": [1.0]}
        with eng:
            t = threading.Thread(target=swapper, daemon=True)
            t.start()
            try:
                responses = [eng.request([x, x]) for _ in range(200)]
            finally:
                stop.set()
                t.join(timeout=10)
        assert len(responses) == 200
        for resp in responses:
            # both examples in the request scored under the same version
            assert resp.results[0].margin == resp.results[1].margin
            assert resp.results[0].margin == pytest.approx(
                W[0] * resp.model_version, abs=1e-12
            )
        versions = {r.model_version for r in responses}
        assert len(versions) > 1, "no swap landed mid-load"


class TestMicroBatching:
    def test_request_without_start_fails(self):
        with pytest.raises(ConfigurationError):
            _engine().request([[0.0] * N])

    def test_concurrent_requests_coalesce(self):
        tel = Telemetry()
        eng = _engine(telemetry=tel)
        eng.max_delay = 0.02  # wide window so the threads pile up
        x = {"indices": [2], "values": [1.0]}
        results = []
        with eng:
            barrier = threading.Barrier(8)

            def fire():
                barrier.wait()
                results.append(eng.request([x]))

            threads = [threading.Thread(target=fire) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert len(results) == 8
        stats = eng.stats()
        assert stats.requests == 8
        assert stats.batches < 8, "no coalescing happened"
        assert stats.batch_size_mean > 1.0
        bucket_total = sum(stats.batch_size_histogram.values())
        assert bucket_total == stats.batches
        counters = tel.counters()
        assert counters[keys.SERVE_REQUESTS] == 8
        assert counters[keys.SERVE_EXAMPLES] == 8

    def test_stop_fails_queued_requests_retriably(self):
        eng = _engine()
        eng.start()
        eng.stop()
        with pytest.raises(ConfigurationError):
            eng.request([[0.0] * N])


class TestArtifactServing:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("artifact") / "model.json"
        result = train(
            "lr", "w8a", architecture="cpu-par", strategy="synchronous",
            scale="tiny", step_size=0.5, max_epochs=5,
        )
        save_results(result, path)
        return path, result

    def test_from_artifact_serves_trained_params(self, artifact):
        path, result = artifact
        eng = ScoringEngine.from_artifact(path, watch=False)
        assert eng.task == "lr"
        assert eng.refresher is None
        x = {"indices": [0, 3], "values": [1.0, 1.0]}
        resp = eng.score([x])
        assert resp.model_source == "artifact"
        expected = result.params[0] + result.params[3]
        assert resp.results[0].margin == pytest.approx(expected, abs=1e-12)

    def test_artifact_without_params_is_rejected(self, artifact, tmp_path):
        import json

        path, result = artifact
        doc = json.loads(path.read_text())
        doc["results"][0].pop("params")
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(doc))
        with pytest.raises(ConfigurationError, match="without parameters"):
            ScoringEngine.from_artifact(bare, watch=False)

    def test_missing_artifact_is_retriable(self, tmp_path):
        source = ArtifactSource(tmp_path / "missing.json")
        with pytest.raises(SnapshotUnavailableError) as exc:
            source.poll()
        assert exc.value.reason == "no-artifact"

    def test_rewrite_hot_swaps(self, artifact, tmp_path):
        import json
        import os

        path, result = artifact
        copy = tmp_path / "model.json"
        copy.write_text(path.read_text())
        eng = ScoringEngine.from_artifact(copy, watch=True, refresh_interval=0.02)
        x = {"indices": [0], "values": [1.0]}
        with eng:
            r1 = eng.request([x])
            assert r1.model_version == 1
            doc = json.loads(copy.read_text())
            doc["results"][0]["params"] = [
                2.0 * float(v) for v in doc["results"][0]["params"]
            ]
            copy.write_text(json.dumps(doc))
            os.utime(copy)  # ensure a fresh mtime even on coarse clocks
            deadline = time.time() + 10
            while time.time() < deadline:
                r2 = eng.request([x])
                if r2.model_version == 2:
                    break
                time.sleep(0.02)
            assert r2.model_version == 2
            assert r2.results[0].margin == pytest.approx(
                2 * r1.results[0].margin, abs=1e-12
            )
        assert eng.refresher.installs >= 1


class TestSnapshotServing:
    def test_from_snapshot_live_publisher(self):
        ds = load("w8a", "tiny")
        pub = SnapshotPublisher.create(
            ds.n_features, meta={"task": "lr", "n_features": ds.n_features}
        )
        try:
            handle = ShmTrainHandle.attach(pub)
            eng = ScoringEngine.from_snapshot(handle, refresh_interval=0.01)
            x = {"indices": [0], "values": [1.0]}
            with eng:
                # cold start first: nothing published yet
                with pytest.raises(SnapshotUnavailableError):
                    eng.request([x])
                w = np.zeros(ds.n_features)
                w[0] = 4.0
                pub.publish(w, epoch=1, loss=0.5)
                deadline = time.time() + 10
                while time.time() < deadline:
                    try:
                        resp = eng.request([x])
                        break
                    except SnapshotUnavailableError:
                        time.sleep(0.01)
                assert resp.model_source == "shm"
                assert resp.results[0].margin == pytest.approx(4.0)
        finally:
            pub.close()

    def test_from_snapshot_requires_task_metadata(self):
        pub = SnapshotPublisher.create(8, meta={})
        try:
            with pytest.raises(ConfigurationError, match="task"):
                ScoringEngine.from_snapshot(ShmTrainHandle.attach(pub))
        finally:
            pub.close()

    def test_dead_trainer_keeps_last_model_and_counts_source_errors(self):
        """Graceful degradation: the segment vanishing mid-serve is a
        counted source error, not an outage."""
        tel = Telemetry()
        pub = SnapshotPublisher.create(8, meta={"task": "lr", "n_features": 8})
        handle = ShmTrainHandle.attach(pub, telemetry=tel)
        eng = ScoringEngine.from_snapshot(handle, telemetry=tel, refresh_interval=0.01)
        pub.publish(np.ones(8), epoch=1)
        assert eng.refresher.poll_once()  # installs version 1
        pub.close()  # trainer dies, segment unlinked
        # the handle's mapping survives; polling sees no new version
        assert not eng.refresher.poll_once()
        resp = eng.score([{"indices": [0], "values": [2.0]}])
        assert resp.results[0].margin == pytest.approx(2.0)
        # a poll that *fails hard* is counted, and serving continues
        eng.refresher.source = _ExplodingSource()
        assert not eng.refresher.poll_once()
        assert eng.stats().source_errors == 1
        assert tel.counters()[keys.SERVE_SOURCE_ERRORS] == 1
        assert eng.score([{"indices": [0], "values": [2.0]}]).results[0].margin == 2.0
        handle.close()


class _ExplodingSource:
    def poll(self):
        raise OSError("segment ripped out from under us")

    def close(self):
        pass


class TestLoadGenerator:
    def test_seeded_runs_and_reports(self):
        eng = _engine()
        pool = [
            {"indices": [0], "values": [1.0]},
            {"indices": [1, 4], "values": [0.5, 0.5]},
            [0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
        ]
        with eng:
            gen = LoadGenerator(eng, pool, seed=11, concurrency=3)
            rep = gen.run(60, mode="batched")
        assert rep.mode == "batched"
        assert rep.requests > 0
        assert rep.errors == 0
        assert rep.requests_per_second > 0
        assert rep.latency_p99_ms >= rep.latency_p50_ms >= 0
        assert rep.model_versions_seen == (1,)
        assert rep.to_dict()["concurrency"] == 3

    def test_direct_mode_and_validation(self):
        eng = _engine()
        gen = LoadGenerator(eng, [[0.0] * N], seed=1, concurrency=2)
        rep = gen.run(10, mode="direct")
        assert rep.requests > 0
        with pytest.raises(ConfigurationError):
            gen.run(10, mode="weird")
        with pytest.raises(ConfigurationError):
            LoadGenerator(eng, [], seed=1)


class TestRefresherValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SnapshotRefresher(_ExplodingSource(), interval=0.0)
