"""Tests for the JSON-lines socket front end."""

import json
import socket

import numpy as np
import pytest

from repro.serving import (
    ScoringEngine,
    ScoringServer,
    ServedModel,
    ServerConfig,
    request_once,
)

N = 4
W = np.array([1.0, -2.0, 0.5, 4.0])


@pytest.fixture()
def server():
    engine = ScoringEngine("lr", N, max_delay=0.001)
    engine.install(ServedModel(params=W, version=1, source="artifact"))
    with engine, ScoringServer(engine, ServerConfig()) as srv:
        yield srv


class TestProtocol:
    def test_ping(self, server):
        assert request_once(server.host, server.port, {"op": "ping"}) == {
            "ok": True,
            "op": "ping",
        }

    def test_score_dense_and_sparse(self, server):
        reply = request_once(
            server.host,
            server.port,
            {
                "op": "score",
                "examples": [
                    [1.0, 0.0, 0.0, 1.0],
                    {"indices": [0, 3], "values": [1.0, 1.0]},
                ],
            },
        )
        assert reply["ok"]
        assert reply["model_version"] == 1
        m0, m1 = (r["margin"] for r in reply["results"])
        assert m0 == pytest.approx(5.0) and m1 == pytest.approx(5.0)
        assert reply["results"][0]["label"] == 1
        assert 0.0 < reply["results"][0]["prob"] < 1.0
        assert reply["latency_ms"] >= 0.0

    def test_stats_op(self, server):
        request_once(
            server.host, server.port, {"op": "score", "examples": [[0.0] * N]}
        )
        reply = request_once(server.host, server.port, {"op": "stats"})
        assert reply["ok"]
        assert reply["stats"]["requests"] >= 1
        assert reply["stats"]["model_version"] == 1

    def test_multiple_requests_per_connection(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            f = sock.makefile("rw", encoding="utf-8")
            for _ in range(3):
                f.write(json.dumps({"op": "ping"}) + "\n")
                f.flush()
                assert json.loads(f.readline())["ok"]

    def test_shutdown_op(self, server):
        reply = request_once(server.host, server.port, {"op": "shutdown"})
        assert reply["ok"]
        assert server.wait(5.0)


class TestProtocolErrors:
    @pytest.mark.parametrize(
        "raw,retriable",
        [
            (b"this is not json", False),
            (b"[1, 2, 3]", False),
            (b'{"no_op": true}', False),
            (b'{"op": "frobnicate"}', False),
            (b'{"op": "score", "examples": [[1.0]]}', False),
            (b'{"op": "score", "examples": []}', False),
        ],
    )
    def test_bad_requests_are_structured(self, server, raw, retriable):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(raw + b"\n")
            reply = json.loads(sock.makefile().readline())
        assert reply["ok"] is False
        assert reply["error"]["retriable"] is retriable
        assert reply["error"]["type"]
        assert reply["error"]["message"]

    def test_client_errors_are_counted(self, server):
        before = server.engine.stats().errors
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"garbage\n")
            json.loads(sock.makefile().readline())
        assert server.engine.stats().errors == before + 1

    def test_cold_start_over_the_wire(self):
        engine = ScoringEngine("lr", N, max_delay=0.001)  # no model installed
        with engine, ScoringServer(engine) as srv:
            reply = request_once(
                srv.host, srv.port, {"op": "score", "examples": [[0.0] * N]}
            )
            assert reply["ok"] is False
            assert reply["error"]["type"] == "snapshot-unavailable"
            assert reply["error"]["reason"] == "cold-start"
            assert reply["error"]["retriable"] is True
