"""Tests for the JSON-lines socket front end."""

import json
import socket

import numpy as np
import pytest

from repro.serving import (
    ScoringEngine,
    ScoringServer,
    ServedModel,
    ServerConfig,
    request_once,
)

N = 4
W = np.array([1.0, -2.0, 0.5, 4.0])


@pytest.fixture()
def server():
    engine = ScoringEngine("lr", N, max_delay=0.001)
    engine.install(ServedModel(params=W, version=1, source="artifact"))
    with engine, ScoringServer(engine, ServerConfig()) as srv:
        yield srv


class TestProtocol:
    def test_ping(self, server):
        assert request_once(server.host, server.port, {"op": "ping"}) == {
            "ok": True,
            "op": "ping",
        }

    def test_score_dense_and_sparse(self, server):
        reply = request_once(
            server.host,
            server.port,
            {
                "op": "score",
                "examples": [
                    [1.0, 0.0, 0.0, 1.0],
                    {"indices": [0, 3], "values": [1.0, 1.0]},
                ],
            },
        )
        assert reply["ok"]
        assert reply["model_version"] == 1
        m0, m1 = (r["margin"] for r in reply["results"])
        assert m0 == pytest.approx(5.0) and m1 == pytest.approx(5.0)
        assert reply["results"][0]["label"] == 1
        assert 0.0 < reply["results"][0]["prob"] < 1.0
        assert reply["latency_ms"] >= 0.0

    def test_stats_op(self, server):
        request_once(
            server.host, server.port, {"op": "score", "examples": [[0.0] * N]}
        )
        reply = request_once(server.host, server.port, {"op": "stats"})
        assert reply["ok"]
        assert reply["stats"]["requests"] >= 1
        assert reply["stats"]["model_version"] == 1

    def test_multiple_requests_per_connection(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            f = sock.makefile("rw", encoding="utf-8")
            for _ in range(3):
                f.write(json.dumps({"op": "ping"}) + "\n")
                f.flush()
                assert json.loads(f.readline())["ok"]

    def test_shutdown_op(self, server):
        reply = request_once(server.host, server.port, {"op": "shutdown"})
        assert reply["ok"]
        assert server.wait(5.0)


class TestProtocolErrors:
    @pytest.mark.parametrize(
        "raw,retriable",
        [
            (b"this is not json", False),
            (b"[1, 2, 3]", False),
            (b'{"no_op": true}', False),
            (b'{"op": "frobnicate"}', False),
            (b'{"op": "score", "examples": [[1.0]]}', False),
            (b'{"op": "score", "examples": []}', False),
        ],
    )
    def test_bad_requests_are_structured(self, server, raw, retriable):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(raw + b"\n")
            reply = json.loads(sock.makefile().readline())
        assert reply["ok"] is False
        assert reply["error"]["retriable"] is retriable
        assert reply["error"]["type"]
        assert reply["error"]["message"]

    def test_client_errors_are_counted(self, server):
        before = server.engine.stats().errors
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"garbage\n")
            json.loads(sock.makefile().readline())
        assert server.engine.stats().errors == before + 1

    def test_cold_start_over_the_wire(self):
        engine = ScoringEngine("lr", N, max_delay=0.001)  # no model installed
        with engine, ScoringServer(engine) as srv:
            reply = request_once(
                srv.host, srv.port, {"op": "score", "examples": [[0.0] * N]}
            )
            assert reply["ok"] is False
            assert reply["error"]["type"] == "snapshot-unavailable"
            assert reply["error"]["reason"] == "cold-start"
            assert reply["error"]["retriable"] is True


class TestFramingRegression:
    """Bugfix coverage: oversized lines, stop(), internal errors and
    partial replies each used to fail in a corrupting or opaque way."""

    @pytest.fixture()
    def small_cap_server(self):
        engine = ScoringEngine("lr", N, max_delay=0.001)
        engine.install(ServedModel(params=W, version=1, source="artifact"))
        config = ServerConfig(max_line_bytes=1024)
        with engine, ScoringServer(engine, config) as srv:
            yield srv

    def test_oversized_request_gets_line_too_long_and_close(self, small_cap_server):
        """A request past the cap must be answered with a structured
        non-retriable error and the connection closed — before the fix
        the partial line parsed as one request and the overflow bytes
        as phantom follow-ups."""
        srv = small_cap_server
        huge = json.dumps(
            {"op": "score", "examples": [[1.0] * 4000]}
        ).encode("utf-8")
        assert len(huge) > 1024
        with socket.create_connection((srv.host, srv.port), timeout=10) as sock:
            sock.sendall(huge + b"\n")
            f = sock.makefile("rb")
            reply = json.loads(f.readline())
            assert reply["ok"] is False
            assert reply["error"]["type"] == "line-too-long"
            assert reply["error"]["retriable"] is False
            assert reply["error"]["limit_bytes"] == 1024
            # The server closed the connection: no phantom replies to
            # the overflow bytes, just EOF.
            assert f.readline() == b""

    def test_valid_request_after_oversized_on_fresh_connection(self, small_cap_server):
        """The framing bug's second half: after an oversized request
        the *server* must still serve correctly framed clients."""
        srv = small_cap_server
        huge = json.dumps(
            {"op": "score", "examples": [[1.0] * 4000]}
        ).encode("utf-8")
        with socket.create_connection((srv.host, srv.port), timeout=10) as sock:
            sock.sendall(huge + b"\n")
            json.loads(sock.makefile("rb").readline())
        reply = request_once(srv.host, srv.port, {"op": "ping"})
        assert reply == {"ok": True, "op": "ping"}

    def test_request_at_exactly_the_cap_boundary_is_served(self, small_cap_server):
        srv = small_cap_server
        pad = 1024 - len(json.dumps({"op": "ping", "pad": ""})) - 1
        msg = {"op": "ping", "pad": "x" * pad}
        line = json.dumps(msg).encode("utf-8") + b"\n"
        assert len(line) == 1024
        reply = request_once(srv.host, srv.port, msg)
        assert reply["ok"] is True

    def test_stop_unblocks_wait(self, server):
        """Regression: stop() never set the shutdown event, so a
        wait()er outlived the server forever."""
        import threading

        released = threading.Event()

        def waiter():
            if server.wait(timeout=30.0):
                released.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        server.stop()
        assert released.wait(5.0), "stop() must release wait()ers"
        t.join(5.0)

    def test_internal_errors_are_retriable(self, server, monkeypatch):
        """Regression: a server-side fault is not a client bug — the
        dispatch's last-resort branch must mark it retriable."""
        def boom(*args, **kwargs):
            raise RuntimeError("synthetic internal fault")

        monkeypatch.setattr(server.engine, "request", boom)
        reply = request_once(
            server.host, server.port, {"op": "score", "examples": [[0.0] * N]}
        )
        assert reply["ok"] is False
        assert reply["error"]["type"] == "internal"
        assert reply["error"]["retriable"] is True


class TestRequestOnceRegression:
    """request_once against byzantine servers: structured
    ConnectionError instead of an opaque JSONDecodeError."""

    @pytest.fixture()
    def byzantine(self):
        """A one-shot server sending whatever bytes the test sets."""
        import threading

        lst = socket.create_server(("127.0.0.1", 0))
        state = {"reply": b""}

        def serve():
            conn, _ = lst.accept()
            conn.makefile("rb").readline()  # consume the request
            if state["reply"]:
                conn.sendall(state["reply"])
            conn.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        try:
            yield state, lst.getsockname()
        finally:
            lst.close()
            t.join(5.0)

    def test_close_without_reply(self, byzantine):
        state, (host, port) = byzantine
        with pytest.raises(ConnectionError, match="without replying"):
            request_once(host, port, {"op": "ping"}, timeout=10.0)

    def test_close_mid_reply(self, byzantine):
        state, (host, port) = byzantine
        state["reply"] = b'{"ok": true, "op": "pi'  # no trailing newline
        with pytest.raises(ConnectionError, match="mid-reply"):
            request_once(host, port, {"op": "ping"}, timeout=10.0)
