"""Tests for the from-scratch CSR matrix type, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import CSRMatrix
from repro.utils.errors import DataFormatError


@st.composite
def dense_matrices(draw):
    """Random small dense matrices with controllable sparsity."""
    n = draw(st.integers(0, 12))
    d = draw(st.integers(1, 15))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    mat = rng.standard_normal((n, d))
    mat[rng.random((n, d)) > density] = 0.0
    return mat


class TestConstruction:
    def test_from_dense_roundtrip(self, small_csr):
        np.testing.assert_array_equal(small_csr.to_dense(), small_csr.to_dense())

    def test_from_dense_drops_zeros(self):
        m = CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert m.nnz == 1
        assert m.row_nnz.tolist() == [1, 0]

    def test_from_rows(self):
        rows = [
            (np.array([0, 3]), np.array([1.0, 2.0])),
            (np.array([], dtype=np.int64), np.array([])),
            (np.array([4]), np.array([5.0])),
        ]
        m = CSRMatrix.from_rows(rows, n_cols=5)
        assert m.shape == (3, 5)
        assert m.nnz == 3
        idx, val = m.row(0)
        np.testing.assert_array_equal(idx, [0, 3])
        np.testing.assert_array_equal(val, [1.0, 2.0])

    def test_from_rows_rejects_mismatched_lengths(self):
        with pytest.raises(DataFormatError, match="length mismatch"):
            CSRMatrix.from_rows([(np.array([0, 1]), np.array([1.0]))], n_cols=3)

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(DataFormatError):
            CSRMatrix(
                np.array([1, 1]), np.array([], dtype=np.int32), np.array([]), (1, 3)
            )

    def test_validation_rejects_decreasing_indptr(self):
        with pytest.raises(DataFormatError, match="non-decreasing"):
            CSRMatrix(
                np.array([0, 2, 1]),
                np.array([0, 1], dtype=np.int32),
                np.array([1.0, 2.0]),
                (2, 3),
            )

    def test_validation_rejects_out_of_range_column(self):
        with pytest.raises(DataFormatError, match="out of range"):
            CSRMatrix(np.array([0, 1]), np.array([5], dtype=np.int32), np.array([1.0]), (1, 3))

    def test_validation_rejects_unsorted_columns_within_row(self):
        with pytest.raises(DataFormatError, match="increase within a row"):
            CSRMatrix(
                np.array([0, 2]),
                np.array([2, 1], dtype=np.int32),
                np.array([1.0, 2.0]),
                (1, 3),
            )

    def test_boundary_column_decrease_is_legal(self):
        # last column of row 0 > first column of row 1 is fine
        m = CSRMatrix(
            np.array([0, 1, 2]),
            np.array([2, 0], dtype=np.int32),
            np.array([1.0, 2.0]),
            (2, 3),
        )
        assert m.nnz == 2


class TestProperties:
    def test_density_and_memory(self, small_csr):
        assert small_csr.density == small_csr.nnz / (12 * 9)
        assert small_csr.memory_bytes > 0
        assert small_csr.dense_bytes == 12 * 9 * 8

    def test_column_frequencies(self):
        m = CSRMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 2.0]]))
        np.testing.assert_allclose(m.column_frequencies(), [1.0, 0.5])

    def test_row_cache_lines_counts_distinct_lines(self):
        # columns 0 and 7 share line 0; column 8 is line 1
        rows = [(np.array([0, 7, 8]), np.ones(3))]
        m = CSRMatrix.from_rows(rows, n_cols=16)
        assert m.row_cache_lines().tolist() == [2]

    def test_row_cache_lines_empty_row(self):
        m = CSRMatrix.from_rows([(np.array([], dtype=np.int64), np.array([]))], 8)
        assert m.row_cache_lines().tolist() == [0]


class TestArithmetic:
    @given(dense_matrices())
    @settings(max_examples=80, deadline=None)
    def test_matvec_matches_dense(self, dense):
        m = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(0).standard_normal(dense.shape[1])
        np.testing.assert_allclose(m.matvec(x), dense @ x, atol=1e-10)

    @given(dense_matrices())
    @settings(max_examples=80, deadline=None)
    def test_rmatvec_matches_dense(self, dense):
        m = CSRMatrix.from_dense(dense)
        v = np.random.default_rng(1).standard_normal(dense.shape[0])
        np.testing.assert_allclose(m.rmatvec(v), dense.T @ v, atol=1e-10)

    @given(dense_matrices(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_matmat_matches_dense(self, dense, k):
        m = CSRMatrix.from_dense(dense)
        B = np.random.default_rng(2).standard_normal((dense.shape[1], k))
        np.testing.assert_allclose(m.matmat(B), dense @ B, atol=1e-10)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_to_dense_roundtrip(self, dense):
        np.testing.assert_array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_matvec_shape_check(self, small_csr):
        with pytest.raises(DataFormatError):
            small_csr.matvec(np.ones(small_csr.n_cols + 1))

    def test_rmatvec_shape_check(self, small_csr):
        with pytest.raises(DataFormatError):
            small_csr.rmatvec(np.ones(small_csr.n_rows + 1))


class TestTakeRows:
    def test_selects_in_order(self, small_csr):
        rows = np.array([5, 0, 3])
        sub = small_csr.take_rows(rows)
        np.testing.assert_array_equal(sub.to_dense(), small_csr.to_dense()[rows])

    def test_duplicate_rows_allowed(self, small_csr):
        sub = small_csr.take_rows(np.array([1, 1]))
        dense = small_csr.to_dense()
        np.testing.assert_array_equal(sub.to_dense(), dense[[1, 1]])

    def test_row_views_are_views(self, small_csr):
        idx, val = small_csr.row(0)
        assert idx.base is small_csr.indices or idx.size == 0
        assert val.base is small_csr.data or val.size == 0


class TestIterRows:
    def test_yields_all_rows_in_order(self, small_csr):
        rows = list(small_csr.iter_rows())
        assert len(rows) == small_csr.n_rows
        for i, (idx, val) in enumerate(rows):
            eidx, eval_ = small_csr.row(i)
            np.testing.assert_array_equal(idx, eidx)
            np.testing.assert_array_equal(val, eval_)
