"""Tests for the operation-trace recorder."""

import pytest

from repro.linalg.trace import OpKind, OpRecord, Trace, record_op, recording, trace_paused


def _op(name="op", flops=10.0, br=8.0, bw=8.0, **kw):
    return OpRecord(
        name=name, kind=OpKind.ELEMENTWISE, flops=flops, bytes_read=br, bytes_written=bw, **kw
    )


class TestOpRecord:
    def test_bytes_total(self):
        assert _op(br=3.0, bw=4.0).bytes_total == 7.0

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            _op(flops=-1.0)

    def test_rejects_zero_parallel_tasks(self):
        with pytest.raises(ValueError):
            _op(parallel_tasks=0)

    def test_rejects_dispersion_below_one(self):
        with pytest.raises(ValueError):
            _op(dispersion=0.5)


class TestRecording:
    def test_capture_inside_scope_only(self):
        record_op(_op("outside"))  # no active recorder: silently dropped
        with recording() as tr:
            record_op(_op("inside"))
        record_op(_op("after"))
        assert [op.name for op in tr] == ["inside"]

    def test_nested_scopes_capture_innermost(self):
        with recording() as outer:
            record_op(_op("a"))
            with recording() as inner:
                record_op(_op("b"))
            record_op(_op("c"))
        assert [op.name for op in outer] == ["a", "c"]
        assert [op.name for op in inner] == ["b"]

    def test_trace_paused_suppresses(self):
        with recording() as tr:
            record_op(_op("kept"))
            with trace_paused():
                record_op(_op("hidden"))
            record_op(_op("kept2"))
        assert [op.name for op in tr] == ["kept", "kept2"]

    def test_totals(self):
        with recording() as tr:
            record_op(_op(flops=3.0, br=1.0, bw=2.0))
            record_op(_op(flops=4.0, br=5.0, bw=6.0))
        assert tr.total_flops == 7.0
        assert tr.total_bytes == 14.0
        assert len(tr) == 2

    def test_by_kind(self):
        with recording() as tr:
            record_op(_op(flops=3.0))
        assert tr.by_kind() == {OpKind.ELEMENTWISE: 3.0}


class TestScaled:
    def test_scales_example_driven_ops(self):
        tr = Trace([_op(flops=2.0, br=4.0, bw=4.0, parallel_tasks=10, result_size=10)])
        out = tr.scaled(3.0)
        op = out.ops[0]
        assert op.flops == 6.0
        assert op.bytes_total == 24.0
        assert op.parallel_tasks == 30
        assert op.result_size == 30

    def test_model_sized_ops_pass_through(self):
        tr = Trace(
            [
                _op(
                    flops=2.0,
                    br=4.0,
                    bw=4.0,
                    parallel_tasks=10,
                    result_size=10,
                    cost_scales=False,
                    parallelism_scales=False,
                )
            ]
        )
        op = tr.scaled(5.0).ops[0]
        assert op.flops == 2.0
        assert op.parallel_tasks == 10
        assert op.result_size == 10

    def test_weight_gradient_shape(self):
        """dW GEMMs: cost scales with N, result shape does not."""
        tr = Trace(
            [
                _op(
                    flops=100.0,
                    br=100.0,
                    bw=8.0,
                    parallel_tasks=54,
                    result_size=540,
                    cost_scales=True,
                    parallelism_scales=False,
                )
            ]
        )
        op = tr.scaled(7.0).ops[0]
        assert op.flops == 700.0
        assert op.result_size == 540
        assert op.parallel_tasks == 54

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            Trace([_op()]).scaled(-1.0)

    def test_extend(self):
        a, b = Trace([_op("x")]), Trace([_op("y")])
        a.extend(b)
        assert [op.name for op in a] == ["x", "y"]
