"""Tests for the instrumented sparse primitives."""

import numpy as np
import pytest

from repro.linalg import (
    CSRMatrix,
    csr_matmat,
    csr_matvec,
    csr_rmatvec,
    gather,
    recording,
    scatter_add,
)
from repro.linalg.trace import OpKind


class TestNumerical:
    def test_csr_matvec(self, small_csr, rng):
        x = rng.standard_normal(small_csr.n_cols)
        np.testing.assert_allclose(csr_matvec(small_csr, x), small_csr.to_dense() @ x)

    def test_csr_rmatvec(self, small_csr, rng):
        v = rng.standard_normal(small_csr.n_rows)
        np.testing.assert_allclose(
            csr_rmatvec(small_csr, v), small_csr.to_dense().T @ v
        )

    def test_csr_matmat(self, small_csr, rng):
        B = rng.standard_normal((small_csr.n_cols, 3))
        np.testing.assert_allclose(csr_matmat(small_csr, B), small_csr.to_dense() @ B)

    def test_gather(self, rng):
        x = rng.standard_normal(10)
        idx = np.array([3, 3, 7])
        np.testing.assert_array_equal(gather(x, idx), x[idx])

    def test_scatter_add_accumulates_duplicates(self):
        x = np.zeros(5)
        scatter_add(x, np.array([1, 1, 4]), np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x, [0.0, 3.0, 0.0, 0.0, 3.0])


class TestInstrumentation:
    def test_spmv_marks_irregular_and_dispersion(self, small_csr, rng):
        x = rng.standard_normal(small_csr.n_cols)
        with recording() as tr:
            csr_matvec(small_csr, x)
        (op,) = tr.ops
        assert op.kind is OpKind.SPMV
        assert op.irregular
        assert op.dispersion >= 1.0
        assert op.flops == 2.0 * small_csr.nnz

    def test_dispersion_reflects_row_imbalance(self):
        balanced = CSRMatrix.from_rows(
            [(np.array([0]), np.array([1.0])), (np.array([1]), np.array([1.0]))], 4
        )
        skewed = CSRMatrix.from_rows(
            [(np.array([0]), np.array([1.0])), (np.arange(4), np.ones(4))], 4
        )
        with recording() as tr:
            csr_matvec(balanced, np.zeros(4))
            csr_matvec(skewed, np.zeros(4))
        assert tr.ops[0].dispersion == pytest.approx(1.0)
        assert tr.ops[1].dispersion > 1.4

    def test_rmatvec_result_is_model_sized(self, small_csr, rng):
        v = rng.standard_normal(small_csr.n_rows)
        with recording() as tr:
            csr_rmatvec(small_csr, v)
        assert tr.ops[0].result_size == small_csr.n_cols
        assert tr.ops[0].parallel_tasks == small_csr.n_rows

    def test_gather_scatter_cost(self, rng):
        x = rng.standard_normal(16)
        with recording() as tr:
            gather(x, np.array([0, 8]))
            scatter_add(x, np.array([0, 8]), np.ones(2))
        assert all(op.kind is OpKind.GATHER_SCATTER for op in tr.ops)
        assert all(op.irregular for op in tr.ops)
