"""Tests for the ViennaCL kernel-parallelisation policy."""

from repro.linalg.policy import FULLY_PARALLEL_POLICY, VIENNACL_POLICY, KernelPolicy
from repro.linalg.trace import OpKind, OpRecord


def _gemm(result_size: int, parallel_tasks: int = 1000) -> OpRecord:
    return OpRecord(
        name="g",
        kind=OpKind.GEMM,
        flops=1.0,
        bytes_read=1.0,
        bytes_written=1.0,
        parallel_tasks=parallel_tasks,
        result_size=result_size,
    )


def _load() -> OpRecord:
    return OpRecord(
        name="load",
        kind=OpKind.DATA_LOAD,
        flops=0.0,
        bytes_read=100.0,
        bytes_written=0.0,
        parallel_tasks=1000,
    )


class TestViennaclPolicy:
    def test_small_gemm_stays_serial(self):
        """The paper's 300x10 weight-gradient products (result 3000 <=
        5000) must not parallelise — the source of the ~2x MLP cap."""
        assert VIENNACL_POLICY.max_threads(_gemm(result_size=3000), 56) == 1

    def test_threshold_is_strict(self):
        assert VIENNACL_POLICY.max_threads(_gemm(result_size=5000), 56) == 1
        assert VIENNACL_POLICY.max_threads(_gemm(result_size=5001), 56) == 56

    def test_data_load_serial(self):
        assert VIENNACL_POLICY.max_threads(_load(), 56) == 1

    def test_never_exceeds_available_parallelism(self):
        op = _gemm(result_size=10_000, parallel_tasks=4)
        assert VIENNACL_POLICY.max_threads(op, 56) == 4

    def test_single_thread_request(self):
        assert VIENNACL_POLICY.max_threads(_gemm(10_000), 1) == 1


class TestFullyParallelPolicy:
    def test_parallelises_everything(self):
        assert FULLY_PARALLEL_POLICY.max_threads(_gemm(10), 56) == 56
        assert FULLY_PARALLEL_POLICY.max_threads(_load(), 56) == 56


class TestCustomPolicy:
    def test_zero_threshold(self):
        p = KernelPolicy(name="always", gemm_min_result_size=0)
        assert p.max_threads(_gemm(1, parallel_tasks=8), 56) == 8
