"""Tests for the instrumented dense primitives."""

import numpy as np
import pytest

from repro.linalg import (
    axpy,
    elementwise,
    gemm,
    gemv,
    outer_update,
    recording,
    reduce_mean,
    reduce_sum,
    rgemv,
    scale,
    sigmoid,
)
from repro.linalg.trace import OpKind


@pytest.fixture()
def mats(rng):
    A = rng.standard_normal((6, 4))
    B = rng.standard_normal((4, 3))
    x = rng.standard_normal(4)
    v = rng.standard_normal(6)
    return A, B, x, v


class TestNumericalCorrectness:
    def test_gemm(self, mats):
        A, B, _, _ = mats
        np.testing.assert_allclose(gemm(A, B), A @ B)

    def test_gemm_shape_mismatch(self, mats):
        A, _, _, _ = mats
        with pytest.raises(ValueError, match="gemm shape"):
            gemm(A, A)

    def test_gemv_and_rgemv(self, mats):
        A, _, x, v = mats
        np.testing.assert_allclose(gemv(A, x), A @ x)
        np.testing.assert_allclose(rgemv(A, v), A.T @ v)

    def test_axpy_scale(self, mats):
        _, _, x, _ = mats
        np.testing.assert_allclose(axpy(2.0, x, x), 3.0 * x)
        np.testing.assert_allclose(scale(-1.5, x), -1.5 * x)

    def test_sigmoid_stable_at_extremes(self):
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out))

    def test_reductions(self, mats):
        A, _, _, _ = mats
        np.testing.assert_allclose(reduce_sum(A, axis=0), A.sum(axis=0))
        np.testing.assert_allclose(reduce_mean(A), A.mean())

    def test_elementwise(self, mats):
        _, _, x, _ = mats
        np.testing.assert_allclose(elementwise(np.tanh, x), np.tanh(x))

    def test_outer_update_in_place(self, rng):
        W = np.zeros((3, 2))
        u, v = rng.standard_normal(3), rng.standard_normal(2)
        ret = outer_update(W, 0.5, u, v)
        assert ret is W
        np.testing.assert_allclose(W, 0.5 * np.outer(u, v))


class TestInstrumentation:
    def test_gemm_record(self, mats):
        A, B, _, _ = mats
        with recording() as tr:
            gemm(A, B, name="fwd")
        (op,) = tr.ops
        assert op.name == "fwd"
        assert op.kind is OpKind.GEMM
        assert op.flops == 2 * 6 * 3 * 4
        assert op.result_size == 18
        assert op.parallel_tasks == 6

    def test_gemv_vs_rgemv_parallelism(self, mats):
        A, _, x, v = mats
        with recording() as tr:
            gemv(A, x)
            rgemv(A, v)
        assert tr.ops[0].parallel_tasks == 6  # output rows
        assert tr.ops[1].parallel_tasks == 4  # output coords

    def test_flags_recorded(self, mats):
        _, _, x, _ = mats
        with recording() as tr:
            axpy(1.0, x, x, cost_scales=False, parallelism_scales=False)
        assert tr.ops[0].cost_scales is False
        assert tr.ops[0].parallelism_scales is False

    def test_sigmoid_transcendental_cost(self, mats):
        _, _, x, _ = mats
        with recording() as tr:
            sigmoid(x)
        assert tr.ops[0].flops == 6.0 * x.size

    def test_no_recorder_is_silent(self, mats):
        A, B, _, _ = mats
        gemm(A, B)  # must not raise outside a recording scope
