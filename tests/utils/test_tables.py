"""Tests for text table / chart rendering."""

import math

import pytest

from repro.utils.tables import (
    format_cell,
    render_bar_chart,
    render_line_chart,
    render_table,
)


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_infinity_matches_paper_notation(self):
        assert format_cell(math.inf) == "inf"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_int_thousands_separator(self):
        assert format_cell(581012) == "581,012"

    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_tiny_float_scientific(self):
        assert "e" in format_cell(1.5e-7)

    def test_string_passthrough(self):
        assert format_cell("covtype") == "covtype"


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "30" in out and "4.25" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table T")
        assert out.startswith("Table T")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])


class TestRenderBarChart:
    def test_bars_scale_with_value(self):
        out = render_bar_chart(["lo", "hi"], [1.0, 10.0], width=20)
        lo_line, hi_line = out.splitlines()
        assert hi_line.count("#") == 20
        assert 0 < lo_line.count("#") < hi_line.count("#")

    def test_infinity_shown_textually(self):
        out = render_bar_chart(["x"], [math.inf])
        assert "inf" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])


class TestRenderLineChart:
    def test_contains_markers_and_legend(self):
        out = render_line_chart(
            {"s1": ([1, 2, 3], [3.0, 2.0, 1.0]), "s2": ([1, 2, 3], [1.0, 2.0, 3.0])}
        )
        assert "legend" in out
        assert "o" in out and "*" in out

    def test_log_axis_skips_nonpositive(self):
        out = render_line_chart({"s": ([0.0, 10.0, 100.0], [1.0, 2.0, 3.0])}, logx=True)
        assert "log10(x)" in out

    def test_no_finite_points(self):
        out = render_line_chart({"s": ([math.inf], [1.0])}, title="T")
        assert "no finite points" in out
