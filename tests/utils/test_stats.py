"""Tests for the statistics helpers (Welford, dispersion, geo-mean)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStats,
    dispersion_ratio,
    geometric_mean,
    percentile_summary,
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.push(3.5)
        assert s.mean == 3.5
        assert s.min == s.max == 3.5
        assert s.std == 0.0

    def test_matches_numpy(self, rng):
        xs = rng.standard_normal(257)
        s = RunningStats()
        s.push_many(xs)
        assert s.count == 257
        assert s.mean == pytest.approx(xs.mean())
        assert s.variance == pytest.approx(xs.var(ddof=1))
        assert s.min == xs.min() and s.max == xs.max()

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=40),
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        for x in xs:
            a.push(x)
            c.push(x)
        for y in ys:
            b.push(y)
            c.push(y)
        merged = a.merge(b)
        assert merged.count == c.count
        if c.count:
            assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-9)
            assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestDispersionRatio:
    def test_constant_sample_is_one(self):
        assert dispersion_ratio(np.full(10, 7.0)) == 1.0

    def test_empty_is_one(self):
        assert dispersion_ratio(np.array([])) == 1.0

    def test_max_over_mean(self):
        vals = np.array([1.0, 1.0, 10.0])
        assert dispersion_ratio(vals) == pytest.approx(10.0 / 4.0)

    def test_never_below_one(self):
        # negative values drag the mean below max but floor is 1.0
        assert dispersion_ratio(np.array([1.0, 1.0])) == 1.0


class TestPercentileSummary:
    def test_keys_and_ordering(self, rng):
        s = percentile_summary(rng.standard_normal(100))
        assert s["min"] <= s["p25"] <= s["median"] <= s["p75"] <= s["max"]

    def test_empty_returns_nans(self):
        s = percentile_summary(np.array([]))
        assert all(math.isnan(v) for v in s.values())
