"""Tests for deterministic RNG management."""

import numpy as np

from repro.utils.rng import DEFAULT_SEED, derive_rng, make_rng, spawn_streams, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_distinct_labels_distinct_hashes(self):
        labels = [f"stream/{i}" for i in range(64)]
        assert len({stable_hash(s) for s in labels}) == 64

    def test_is_32bit(self):
        assert 0 <= stable_hash("anything") < 2**32


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=8)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_stream(self):
        a = make_rng(7).standard_normal(16)
        b = make_rng(7).standard_normal(16)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = make_rng(7).standard_normal(16)
        b = make_rng(8).standard_normal(16)
        assert not np.allclose(a, b)


class TestDeriveRng:
    def test_label_isolation(self):
        a = derive_rng(0, "alpha").standard_normal(16)
        b = derive_rng(0, "beta").standard_normal(16)
        assert not np.allclose(a, b)

    def test_reproducible(self):
        a = derive_rng(3, "x").standard_normal(4)
        b = derive_rng(3, "x").standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        before = derive_rng(5, "existing").standard_normal(8)
        _ = derive_rng(5, "newcomer").standard_normal(8)
        after = derive_rng(5, "existing").standard_normal(8)
        np.testing.assert_array_equal(before, after)


class TestSpawnStreams:
    def test_yields_n_independent_streams(self):
        streams = list(spawn_streams(0, "threads", 5))
        assert len(streams) == 5
        draws = [g.standard_normal(8) for g in streams]
        for i in range(5):
            for j in range(i + 1, 5):
                assert not np.allclose(draws[i], draws[j])

    def test_matches_indexed_derive(self):
        (first,) = list(spawn_streams(2, "lbl", 1))
        expected = derive_rng(2, "lbl/0")
        np.testing.assert_array_equal(
            first.standard_normal(4), expected.standard_normal(4)
        )
