"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.errors import ConfigurationError
from repro.utils.validation import (
    check_array_2d,
    check_in,
    check_labels,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive("x", 0.5) == 0.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1e-9)

    def test_probability_bounds(self):
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.0001)

    def test_check_in(self):
        assert check_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ConfigurationError, match="mode must be one of"):
            check_in("mode", "c", ("a", "b"))


class TestArrayChecks:
    def test_array_2d_contiguous_float64(self):
        arr = check_array_2d("X", np.asfortranarray(np.ones((3, 2), dtype=np.float32)))
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_array_2d_rejects_1d(self):
        with pytest.raises(ConfigurationError, match="must be 2-D"):
            check_array_2d("X", np.ones(3))

    def test_labels_accept_pm1(self):
        y = check_labels("y", np.array([1, -1, 1]), 3)
        assert y.dtype == np.float64

    def test_labels_reject_other_values(self):
        with pytest.raises(ConfigurationError, match="-1/\\+1"):
            check_labels("y", np.array([0.0, 1.0]), 2)

    def test_labels_reject_wrong_length(self):
        with pytest.raises(ConfigurationError, match="length"):
            check_labels("y", np.array([1.0, -1.0]), 3)
