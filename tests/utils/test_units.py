"""Tests for unit constants and human-readable formatting."""

import math

from repro.utils.units import (
    CACHE_LINE_BYTES,
    FLOAT64_BYTES,
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_seconds,
)


class TestConstants:
    def test_byte_multiples(self):
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_cache_line_holds_eight_doubles(self):
        assert CACHE_LINE_BYTES // FLOAT64_BYTES == 8


class TestFormatBytes:
    def test_table1_style(self):
        assert format_bytes(4.4 * MiB) == "4.4MB"
        assert format_bytes(1.2 * GiB) == "1.2GB"

    def test_small_values(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2 * KiB) == "2.0KB"


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0123) == "12.30ms"
        assert format_seconds(45e-6) == "45.0us"

    def test_special_values(self):
        assert format_seconds(math.inf) == "inf"
        assert format_seconds(float("nan")) == "nan"
