"""ResultStore: config hashing, atomic persistence, corruption tolerance."""

import json
import multiprocessing as mp

import numpy as np

from repro.experiments.resilience import CellFailure
from repro.experiments.store import ResultStore, config_key
from repro.sgd.convergence import LossCurve
from repro.sgd.runner import TrainResult


def make_result(**overrides):
    curve = LossCurve()
    curve.record(0, 1.0)
    curve.record(1, 0.5)
    curve.record(2, float("inf"))
    fields = dict(
        task="lr",
        dataset="w8a",
        architecture="cpu-seq",
        strategy="asynchronous",
        step_size=0.5,
        curve=curve,
        time_per_iter=0.125,
        optimal_loss=0.25,
        diverged=False,
        dataset_stats={"rows": 100, "features": 10},
    )
    fields.update(overrides)
    return TrainResult(**fields)


CONFIG = {"task": "lr", "dataset": "w8a", "seed": 0, "max_epochs": 50}


class TestConfigKey:
    def test_insertion_order_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert config_key(a) == config_key(b)

    def test_any_value_change_changes_key(self):
        assert config_key(CONFIG) != config_key({**CONFIG, "seed": 1})
        assert config_key(CONFIG) != config_key({**CONFIG, "extra": None})

    def test_nested_values_hashed(self):
        base = {"hw": {"cores": 28, "ghz": 2.0}}
        assert config_key(base) != config_key({"hw": {"cores": 28, "ghz": 2.6}})


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        store = ResultStore(tmp_path)
        result = make_result()
        store.save(CONFIG, result)
        loaded = store.load(CONFIG)
        assert loaded is not None
        assert loaded.curve.losses == result.curve.losses
        assert loaded.curve.epochs == result.curve.epochs
        assert loaded.time_per_iter == result.time_per_iter
        assert loaded.dataset_stats == result.dataset_stats
        assert loaded.epoch_trace is None

    def test_trace_preserved_when_requested(self, tmp_path):
        from repro.linalg.trace import OpKind, OpRecord, Trace

        trace = Trace()
        trace.add(
            OpRecord(
                name="csr_matvec",
                kind=OpKind.SPMV,
                flops=100.0,
                bytes_read=800.0,
                bytes_written=80.0,
                parallel_tasks=10,
                irregular=True,
                dispersion=1.5,
            )
        )
        store = ResultStore(tmp_path)
        store.save(CONFIG, make_result(epoch_trace=trace), include_trace=True)
        loaded = store.load(CONFIG)
        assert loaded.epoch_trace is not None
        assert len(loaded.epoch_trace) == 1
        op = loaded.epoch_trace.ops[0]
        assert op.kind is OpKind.SPMV
        assert op.flops == 100.0
        assert op.irregular and op.dispersion == 1.5

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).load(CONFIG) is None

    def test_nonfinite_losses_survive(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(CONFIG, make_result())
        loaded = store.load(CONFIG)
        assert np.isinf(loaded.curve.losses[-1])


class TestRobustness:
    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(CONFIG, make_result())
        path = store._path(config_key(CONFIG))
        path.write_text("{ not json", encoding="utf-8")
        assert store.load(CONFIG) is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(CONFIG, make_result())
        path = store._path(config_key(CONFIG))
        doc = json.loads(path.read_text())
        doc["schema"] = "something/else"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.load(CONFIG) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in range(5):
            store.save({**CONFIG, "seed": seed}, make_result())
        assert not list(tmp_path.glob("*.tmp"))
        assert len(store) == 5

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(CONFIG, make_result(time_per_iter=1.0))
        store.save(CONFIG, make_result(time_per_iter=2.0))
        assert len(store) == 1
        assert store.load(CONFIG).time_per_iter == 2.0


def _write_many(root, worker, n):
    """Child-process body for the concurrent-writer tests."""
    store = ResultStore(root)
    for i in range(n):
        # Every worker hammers one shared key and owns some private ones.
        store.save(
            {**CONFIG, "shared": True}, make_result(time_per_iter=float(worker))
        )
        store.save({**CONFIG, "worker": worker, "i": i}, make_result())


class TestConcurrentWriters:
    """Keep-going grids persist from many processes at once; the atomic
    write protocol must never produce a torn or unreadable file."""

    WORKERS = 4
    WRITES = 5

    def test_parallel_writes_all_readable(self, tmp_path):
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        procs = [
            ctx.Process(target=_write_many, args=(tmp_path, w, self.WRITES))
            for w in range(self.WORKERS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = ResultStore(tmp_path)
        # One shared key + WORKERS * WRITES private keys, no temp litter.
        assert len(store) == 1 + self.WORKERS * self.WRITES
        assert not list(tmp_path.glob("*.tmp"))
        # The contested key holds one writer's value, intact.
        shared = store.load({**CONFIG, "shared": True})
        assert shared is not None
        assert shared.time_per_iter in {float(w) for w in range(self.WORKERS)}
        for w in range(self.WORKERS):
            for i in range(self.WRITES):
                assert store.load({**CONFIG, "worker": w, "i": i}) is not None


def make_failure(**overrides):
    fields = dict(
        task="lr",
        dataset="w8a",
        architecture="cpu-seq",
        strategy="asynchronous",
        kind="crash",
        phase="train",
        attempts=2,
        error_chain=({"type": "WorkerCrash", "message": "exit 23", "attempt": 2},),
        elapsed_seconds=1.5,
        worker_pids=(101, 102),
        covers=("lr/w8a/cpu-seq/asynchronous",),
    )
    fields.update(overrides)
    return CellFailure(**fields)


class TestFailureRecords:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        failure = make_failure()
        store.save_failure(CONFIG, failure)
        assert store.load_failure(CONFIG) == failure
        assert store.failures() == [failure]

    def test_failures_do_not_count_or_load_as_results(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(CONFIG, make_result())
        store.save_failure({**CONFIG, "seed": 1}, make_failure())
        assert len(store) == 1
        # A resumed grid must retry the failed config, not replay it.
        assert store.load({**CONFIG, "seed": 1}) is None

    def test_missing_and_corrupt_failure_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load_failure(CONFIG) is None
        path = store.save_failure(CONFIG, make_failure())
        path.write_text("{ torn", encoding="utf-8")
        assert store.load_failure(CONFIG) is None
        assert store.failures() == []

    def test_result_and_failure_coexist_per_key(self, tmp_path):
        """A cell that failed once and later succeeded keeps both the
        post-mortem and the result under the same config key."""
        store = ResultStore(tmp_path)
        store.save_failure(CONFIG, make_failure())
        store.save(CONFIG, make_result())
        assert store.load(CONFIG) is not None
        assert store.load_failure(CONFIG) is not None
