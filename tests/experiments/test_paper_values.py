"""Consistency checks on the stored paper measurements.

The transcribed Tables II/III must be internally consistent: the
paper's own speedup columns should match the ratio of its time columns
(within rounding), every (task, dataset) cell must be present, and the
non-convergence markers must be coherent.  This guards against
transcription errors silently skewing the paper-vs-ours comparisons.
"""

import math

import pytest

from repro.experiments.paper_values import PAPER_TABLE2, PAPER_TABLE3


class TestTable2Consistency:
    def test_complete_grid(self):
        cells = {(r.task, r.dataset) for r in PAPER_TABLE2}
        assert len(cells) == 15
        assert {t for t, _ in cells} == {"lr", "svm", "mlp"}

    def test_speedup_columns_match_time_ratios(self):
        for r in PAPER_TABLE2:
            ratio = r.tpi_cpu_seq_ms / r.tpi_cpu_par_ms
            assert ratio == pytest.approx(r.speedup_seq_over_par, rel=0.05), (
                r.task, r.dataset,
            )
            ratio = r.tpi_cpu_par_ms / r.tpi_gpu_ms
            assert ratio == pytest.approx(r.speedup_par_over_gpu, rel=0.05)

    def test_ttc_consistent_with_epochs(self):
        """time-to-convergence ~ epochs * time-per-iteration."""
        for r in PAPER_TABLE2:
            implied = r.epochs * r.tpi_gpu_ms / 1e3
            assert implied == pytest.approx(r.ttc_gpu_s, rel=0.15), (r.task, r.dataset)

    def test_headline_gpu_always_wins(self):
        for r in PAPER_TABLE2:
            assert r.ttc_gpu_s <= r.ttc_cpu_par_s
            assert r.tpi_gpu_ms <= r.tpi_cpu_par_ms


class TestTable3Consistency:
    def test_complete_grid(self):
        assert len({(r.task, r.dataset) for r in PAPER_TABLE3}) == 15

    def test_infinity_markers_coherent(self):
        for r in PAPER_TABLE3:
            assert math.isinf(r.ttc_gpu_s) == math.isinf(r.epochs_gpu), (
                r.task, r.dataset,
            )

    def test_speedup_columns_match_time_ratios(self):
        for r in PAPER_TABLE3:
            assert r.tpi_cpu_seq_ms / r.tpi_cpu_par_ms == pytest.approx(
                r.speedup_seq_over_par, rel=0.06
            ), (r.task, r.dataset)
            assert r.tpi_gpu_ms / r.tpi_cpu_par_ms == pytest.approx(
                r.ratio_gpu_over_par, rel=0.06
            ), (r.task, r.dataset)

    def test_headline_cpu_wins_ttc_with_published_exception(self):
        """The paper's async headline holds in every row except the one
        it itself flags: "w8a is the only dataset on which GPU
        outperforms CPU in time to convergence" (MLP, Section IV-B)."""
        exceptions = []
        for r in PAPER_TABLE3:
            best_cpu = min(r.ttc_cpu_seq_s, r.ttc_cpu_par_s)
            if best_cpu > r.ttc_gpu_s:
                exceptions.append((r.task, r.dataset))
        assert exceptions == [("mlp", "w8a")]

    def test_dense_coherence_storm_as_published(self):
        rows = [r for r in PAPER_TABLE3 if r.dataset == "covtype" and r.task != "mlp"]
        assert all(r.speedup_seq_over_par < 1.0 for r in rows)

    def test_mlp_hogbatch_speedups_as_published(self):
        rows = [r for r in PAPER_TABLE3 if r.task == "mlp"]
        assert all(15.0 <= r.speedup_seq_over_par <= 24.0 for r in rows)
