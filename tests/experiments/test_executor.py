"""The parallel grid executor: bit-identity, dedup, resume, failures.

The acceptance bar for the process-pool fan-out is *bit-identical*
results: every cell produced with ``jobs=4`` must equal the serial
path's output exactly — loss curves, modelled times, divergence flags.
Alongside that: the shared-base dedup must preserve the serial path's
curve-object sharing, resume must replay the store instead of
recomputing, a dead worker must surface as a structured
:class:`WorkerError`, and worker telemetry must fold into the parent
with totals matching a serial instrumented run.
"""

import pytest

from repro.experiments import (
    ExperimentContext,
    GridCell,
    GridExecutor,
    ResultStore,
)
from repro.telemetry import Telemetry, keys
from repro.utils.errors import ConfigurationError, WorkerError

TASKS = ("lr",)
DATASETS = ("covtype", "w8a")


def make_ctx(**kw):
    return ExperimentContext(
        scale="tiny",
        tasks=TASKS,
        datasets=DATASETS,
        sync_max_epochs=150,
        async_max_epochs=50,
        tolerance=0.05,
        **kw,
    )


def all_cells():
    return [
        GridCell(task, dataset, architecture, strategy)
        for task in TASKS
        for dataset in DATASETS
        for strategy in ("synchronous", "asynchronous")
        for architecture in ("cpu-seq", "cpu-par", "gpu")
    ]


def assert_results_identical(a, b):
    assert a.curve.epochs == b.curve.epochs
    assert a.curve.losses == b.curve.losses
    assert a.time_per_iter == b.time_per_iter
    assert a.optimal_loss == b.optimal_loss
    assert a.step_size == b.step_size
    assert a.diverged == b.diverged


@pytest.fixture(scope="module")
def serial_results():
    ctx = make_ctx()
    return {cell: ctx.run(*cell.key) for cell in all_cells()}


class TestBitIdentity:
    def test_jobs4_matches_serial(self, serial_results):
        """The acceptance criterion: --jobs 4 output == --jobs 1 output."""
        ctx = make_ctx(jobs=4)
        parallel = GridExecutor(ctx).execute(all_cells())
        for cell, expected in serial_results.items():
            assert_results_identical(parallel[cell], expected)

    def test_sync_cells_share_curve_object(self):
        """The dedup preserves the serial path's curve sharing."""
        ctx = make_ctx(jobs=2)
        results = GridExecutor(ctx).execute(all_cells())
        seq = results[GridCell("lr", "covtype", "cpu-seq", "synchronous")]
        par = results[GridCell("lr", "covtype", "cpu-par", "synchronous")]
        gpu = results[GridCell("lr", "covtype", "gpu", "synchronous")]
        assert seq.curve is par.curve is gpu.curve

    def test_prefetch_then_run_hits_cache(self, serial_results):
        ctx = make_ctx(jobs=2)
        ctx.prefetch(all_cells())
        for cell in all_cells():
            assert cell.key in ctx._cache
            assert_results_identical(ctx.run(*cell.key), serial_results[cell])

    def test_serial_context_prefetch_is_noop(self):
        ctx = make_ctx()  # jobs=1, no store
        ctx.prefetch(all_cells())
        assert ctx._cache == {}


class TestDedup:
    def test_sync_bases_deduplicated(self):
        tel = Telemetry()
        ctx = make_ctx(jobs=2, telemetry=tel)
        GridExecutor(ctx).execute(all_cells())
        counters = tel.counters()
        # 12 cells: 6 sync (2 bases + 4 recosted) + 6 async.
        assert counters[keys.GRID_CELLS_REQUESTED] == 12
        assert counters[keys.GRID_CELLS_EXECUTED] == 8
        assert counters[keys.GRID_CELLS_DEDUPED] == 4
        assert counters[keys.GRID_CELLS_RECOSTED] == 4
        assert keys.GRID_CELLS_RESUMED not in counters

    def test_cached_cells_not_rerun(self):
        tel = Telemetry()
        ctx = make_ctx(jobs=2, telemetry=tel)
        cells = all_cells()
        GridExecutor(ctx).execute(cells)
        executed = tel.counters()[keys.GRID_CELLS_EXECUTED]
        GridExecutor(ctx).execute(cells)  # everything already cached
        assert tel.counters()[keys.GRID_CELLS_EXECUTED] == executed


class TestTelemetryMerge:
    def test_counter_totals_match_serial(self):
        """Worker counters folded into the parent equal a serial run's
        totals (the ``grid.*`` bookkeeping keys are grid-only)."""
        serial_tel = Telemetry()
        serial_ctx = make_ctx(telemetry=serial_tel)
        for cell in all_cells():
            serial_ctx.run(*cell.key)

        grid_tel = Telemetry()
        ctx = make_ctx(jobs=4, telemetry=grid_tel)
        GridExecutor(ctx).execute(all_cells())

        serial_counters = {
            k: v
            for k, v in serial_tel.counters().items()
            if not k.startswith("grid.")
        }
        grid_counters = {
            k: v
            for k, v in grid_tel.counters().items()
            if not k.startswith("grid.")
        }
        assert grid_counters == serial_counters

    def test_gauges_record_jobs_and_wall(self):
        tel = Telemetry()
        ctx = make_ctx(jobs=2, telemetry=tel)
        GridExecutor(ctx).execute(all_cells())
        gauges = tel.gauges()
        assert gauges[keys.GRID_JOBS] == 2
        assert gauges[keys.GRID_WALL_SECONDS] > 0

    def test_worker_spans_imported_under_grid_span(self):
        tel = Telemetry()
        ctx = make_ctx(jobs=2, telemetry=tel)
        GridExecutor(ctx).execute(all_cells()[:3])
        records = tel.tracer.records()
        grid_spans = [r for r in records if r.name == "grid.execute"]
        assert len(grid_spans) == 1
        imported = [r for r in records if r.parent_id == grid_spans[0].span_id]
        assert imported  # worker root spans re-parented under the grid span


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path, serial_results):
        store = ResultStore(tmp_path / "grid")
        first = make_ctx(jobs=2, store=store)
        GridExecutor(first).execute(all_cells())
        assert len(store) == 8  # 2 sync bases + 6 async cells

        tel = Telemetry()
        resumed_ctx = make_ctx(jobs=2, store=store, resume=True, telemetry=tel)
        results = GridExecutor(resumed_ctx).execute(all_cells())
        counters = tel.counters()
        assert keys.GRID_CELLS_EXECUTED not in counters
        assert counters[keys.GRID_CELLS_RESUMED] == 8
        for cell, expected in serial_results.items():
            assert_results_identical(results[cell], expected)

    def test_partial_store_fills_the_gap(self, tmp_path):
        """Cells missing from the store are recomputed, not skipped."""
        store = ResultStore(tmp_path / "grid")
        sync_only = [c for c in all_cells() if c.strategy == "synchronous"]
        GridExecutor(make_ctx(jobs=2, store=store)).execute(sync_only)
        stored = len(store)

        tel = Telemetry()
        ctx = make_ctx(jobs=2, store=store, resume=True, telemetry=tel)
        GridExecutor(ctx).execute(all_cells())
        counters = tel.counters()
        assert counters[keys.GRID_CELLS_RESUMED] == stored
        assert counters[keys.GRID_CELLS_EXECUTED] == 6  # the async cells

    def test_config_change_misses_store(self, tmp_path):
        store = ResultStore(tmp_path / "grid")
        GridExecutor(make_ctx(jobs=2, store=store)).execute(all_cells())
        tel = Telemetry()
        # A different tolerance changes every cell's config hash.
        ctx = make_ctx(jobs=2, store=store, resume=True, telemetry=tel)
        ctx.tolerance = 0.10
        GridExecutor(ctx).execute(all_cells())
        assert keys.GRID_CELLS_RESUMED not in tel.counters()

    def test_resume_without_store_rejected(self):
        ctx = make_ctx(jobs=2, resume=True)
        with pytest.raises(ConfigurationError):
            GridExecutor(ctx).execute(all_cells())


class TestWorkerFailure:
    def test_dead_worker_raises_structured_error(self, monkeypatch):
        """A worker killed mid-cell surfaces as WorkerError, not a raw
        BrokenProcessPool."""
        cell = GridCell("lr", "covtype", "cpu-seq", "asynchronous")
        monkeypatch.setenv("REPRO_GRID_TEST_CRASH", f"{cell.label()}:13")
        tel = Telemetry()
        ctx = make_ctx(jobs=2, telemetry=tel)
        with pytest.raises(WorkerError) as err:
            GridExecutor(ctx).execute(all_cells())
        assert err.value.phase == "pool"
        # A dead worker poisons the whole pool; the error names the
        # first affected cell (submission order), not always the killer.
        assert "first affected cell lr/" in str(err.value)
        assert tel.counters()[keys.GRID_WORKER_FAILURES] == 1

    def test_worker_exception_wrapped(self):
        """A cell that raises inside the worker is reported with the
        failing cell's identity."""
        bad = GridCell("lr", "no-such-dataset", "cpu-seq", "asynchronous")
        ctx = make_ctx(jobs=2)
        with pytest.raises(WorkerError) as err:
            GridExecutor(ctx).execute([bad] + all_cells())
        assert err.value.phase == "grid-cell"
        assert "no-such-dataset" in str(err.value)

    def test_completed_cells_flushed_before_pool_abort(self, tmp_path):
        """Regression: cells that finished before the failing one must
        be in the store when the grid raises — an aborted run loses
        only the cell that failed, and --resume replays the rest."""
        bad = GridCell("lr", "no-such-dataset", "cpu-seq", "asynchronous")
        good = [c for c in all_cells() if c.strategy == "asynchronous"]
        store = ResultStore(tmp_path / "grid")
        ctx = make_ctx(jobs=2, store=store)
        with pytest.raises(WorkerError):
            GridExecutor(ctx).execute(good + [bad])
        assert len(store) == len(good)

        tel = Telemetry()
        resumed = make_ctx(jobs=2, store=store, resume=True, telemetry=tel)
        GridExecutor(resumed).execute(good)
        assert tel.counters()[keys.GRID_CELLS_RESUMED] == len(good)
        assert keys.GRID_CELLS_EXECUTED not in tel.counters()

    def test_completed_cells_flushed_before_inparent_abort(self, tmp_path):
        """Same guarantee on the jobs=1 in-parent path."""
        bad = GridCell("lr", "no-such-dataset", "cpu-seq", "asynchronous")
        good = GridCell("lr", "covtype", "cpu-seq", "asynchronous")
        store = ResultStore(tmp_path / "grid")
        ctx = make_ctx(store=store)  # jobs=1
        with pytest.raises(WorkerError) as err:
            GridExecutor(ctx).execute([good, bad])
        assert err.value.phase == "grid-cell"
        assert len(store) == 1


class TestManifestRecords:
    def test_records_cover_every_cell_with_provenance(self):
        ctx = make_ctx(jobs=2)
        executor = GridExecutor(ctx)
        executor.execute(all_cells())
        records = executor.cell_records
        assert len(records) == 12
        sources = {r["source"] for r in records}
        assert sources == {"executed", "recosted"}
        for record in records:
            assert record["manifest"]["schema"] == "repro.telemetry/manifest/v1"
            assert record["manifest"]["config"]["task"] == record["cell"]["task"]

    def test_grid_manifest_assembles(self):
        from repro.telemetry import GRID_MANIFEST_SCHEMA, build_grid_manifest

        tel = Telemetry()
        ctx = make_ctx(jobs=2, telemetry=tel)
        executor = GridExecutor(ctx)
        executor.execute(all_cells()[:3])
        manifest = build_grid_manifest(
            executor.cell_records, tel, jobs=2, settings={"scale": "tiny"}
        )
        assert manifest["schema"] == GRID_MANIFEST_SCHEMA
        assert manifest["jobs"] == 2
        assert len(manifest["cells"]) == 3
        assert manifest["counters"][keys.GRID_CELLS_REQUESTED] == 3
