"""Smoke + structure tests for the experiment drivers (tiny scale).

Full-scale shape assertions against the paper live in the benchmark
suite; here we verify the drivers produce complete, well-formed results
on a reduced grid quickly.
"""

import math

import pytest

from repro.experiments import (
    ExperimentContext,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.table3 import staleness_rows


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        scale="tiny",
        tasks=("lr",),
        datasets=("covtype", "w8a"),
        sync_max_epochs=250,
        async_max_epochs=80,
        tolerance=0.05,
    )


class TestContext:
    def test_step_resolution_order(self, ctx):
        ctx.step_overrides[("lr", "w8a", "asynchronous", "cpu-par")] = 0.123
        try:
            assert ctx.step_for("lr", "w8a", "asynchronous", "cpu-par") == 0.123
            # other architectures unaffected by the arch-specific override
            assert ctx.step_for("lr", "w8a", "asynchronous", "gpu") != 0.123
        finally:
            ctx.step_overrides.clear()

    def test_run_cached(self, ctx):
        a = ctx.run("lr", "w8a", "cpu-seq", "asynchronous")
        b = ctx.run("lr", "w8a", "cpu-seq", "asynchronous")
        assert a is b

    def test_sync_shares_optimisation_across_archs(self, ctx):
        seq = ctx.run("lr", "w8a", "cpu-seq", "synchronous")
        gpu = ctx.run("lr", "w8a", "gpu", "synchronous")
        assert seq.curve is gpu.curve  # same optimisation run
        assert seq.time_per_iter != gpu.time_per_iter


class TestTable1:
    def test_checks_pass(self, ctx):
        res = run_table1(ctx)
        assert res.all_ok()
        assert "covtype" in res.render()


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return run_table2(ctx)

    def test_rows_complete(self, result, ctx):
        assert len(result.rows) == len(ctx.tasks) * len(ctx.datasets)

    def test_gpu_fastest_per_iteration(self, result):
        assert result.gpu_always_fastest()

    def test_parallel_helps(self, result):
        assert result.parallel_always_helps()

    def test_render_contains_columns(self, result):
        out = result.render()
        assert "seq/par" in out and "par/gpu" in out

    def test_row_lookup(self, result):
        row = result.row("lr", "w8a")
        assert row.dataset == "w8a"
        with pytest.raises(KeyError):
            result.row("lr", "mnist")


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return run_table3(ctx)

    def test_rows_complete(self, result, ctx):
        assert len(result.rows) == len(ctx.tasks) * len(ctx.datasets)

    def test_epoch_counts_or_infinity(self, result):
        for r in result.rows:
            for e in (r.epochs_gpu, r.epochs_cpu_seq, r.epochs_cpu_par):
                assert e > 0  # positive count or +inf

    def test_dense_coherence_shape(self, result):
        row = result.row("lr", "covtype")
        assert row.speedup_seq_over_par < 1.0  # par slower per iteration

    def test_render(self, result):
        assert "gpu/par" in result.render()


def _ps_manifest(task="lr", dataset="w8a", nodes=3):
    """A minimal run manifest with the counters a PS run records."""
    return {
        "config": {"task": task, "dataset": dataset},
        "results": {"measured": {"nodes": nodes, "max_staleness": 16}},
        "counters": {
            "ps.pull_rounds": 200.0,
            "sgd.updates_applied": 200.0,
            "ps.shard_cache_hits": 600.0,
            "ps.pulls": 1000.0,
            "ps.staleness_bucket.le_0": 120.0,
            "ps.staleness_bucket.le_4": 60.0,
            "ps.staleness_bucket.gt_64": 20.0,
        },
    }


class TestTable3Staleness:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return run_table3(ctx)

    def test_rows_from_run_manifest(self):
        (row,) = staleness_rows(_ps_manifest())
        assert (row.task, row.dataset, row.nodes) == ("lr", "w8a", 3)
        assert row.max_staleness == 16
        assert row.rounds_per_update == 1.0
        assert row.cache_hit_rate == pytest.approx(600 / 1600)
        assert [s for s, _ in row.buckets] == ["le_0", "le_4", "gt_64"]

    def test_grid_manifest_recurses_into_cells(self):
        grid = {
            "cells": [
                {"manifest": _ps_manifest(dataset="covtype", nodes=2)},
                {"manifest": {"counters": {}}},  # non-PS cell: no row
                {"manifest": _ps_manifest()},
            ]
        }
        rows = staleness_rows(grid)
        assert [r.dataset for r in rows] == ["covtype", "w8a"]

    def test_non_ps_manifest_yields_no_rows(self):
        assert staleness_rows({"counters": {"sgd.epochs": 3.0}}) == []

    def test_attach_and_render_section(self, result):
        before = result.render()
        assert "staleness" not in before.lower()
        try:
            assert result.attach_staleness(_ps_manifest()) == 1
            out = result.render()
            assert "rounds/upd" in out
            assert "le 0" in out and "gt 64" in out  # suffixes as headers
        finally:
            result.staleness.clear()  # class-scoped fixture: leave it clean


class TestFig6:
    def test_structure_and_shape(self, ctx):
        res = run_fig6(ctx, architectures=((50, 10, 5, 2), (50, 512, 256, 2)))
        assert len(res.points) == 2
        assert res.points[1].speedup_par_over_seq > res.points[0].speedup_par_over_seq
        assert "par/seq" in res.render()


class TestFig7:
    def test_panels_and_winners(self, ctx):
        res = run_fig7(ctx)
        assert len(res.panels) == len(ctx.tasks) * len(ctx.datasets)
        winners = res.winners()
        assert all(w in ("sync-gpu", "async-cpu", "none") for w in winners.values())
        chart = res.panel("lr", "w8a").render()
        assert "sync-gpu" in chart


class TestFig8:
    def test_entries(self, ctx):
        res = run_fig8(
            ExperimentContext(
                scale="tiny",
                tasks=("lr",),
                datasets=("w8a",),
                sync_max_epochs=120,
                async_max_epochs=40,
                tolerance=0.10,
            )
        )
        systems = set(res.systems())
        assert {"ours-sync", "ours-async", "bidmach"} <= systems
        assert res.get("lr", "w8a", "ours-sync") > 0
        assert "Fig. 8" in res.render()


class TestFig1Space:
    def test_cube_structure(self):
        from repro.experiments import ExperimentContext, run_fig1_space

        ctx = ExperimentContext(
            scale="tiny", tolerance=0.10, sync_max_epochs=150, async_max_epochs=60
        )
        res = run_fig1_space("lr", "w8a", ctx)
        assert len(res.cells) == 8
        labels = {c.label for c in res.cells}
        assert "sync/gpu/auto" in labels and "async/cpu-par/dense" in labels
        assert res.best().label in labels
        assert "corner" in res.render()

    def test_mlp_rejected(self):
        import pytest as _pytest

        from repro.experiments import run_fig1_space

        with _pytest.raises(ValueError, match="lr/svm"):
            run_fig1_space("mlp", "w8a")

    def test_cell_lookup(self):
        from repro.experiments import ExperimentContext, run_fig1_space

        ctx = ExperimentContext(
            scale="tiny", tolerance=0.10, sync_max_epochs=100, async_max_epochs=40
        )
        res = run_fig1_space("svm", "covtype", ctx)
        cell = res.cell("synchronous", "gpu", "auto")
        assert cell.time_per_iter > 0
        import pytest as _pytest

        with _pytest.raises(KeyError):
            res.cell("synchronous", "tpu", "auto")


class TestToleranceLadder:
    @pytest.fixture(scope="class")
    def ladder(self):
        from repro.experiments import ExperimentContext, run_tolerance_ladder

        lctx = ExperimentContext(
            scale="tiny", tolerance=0.01, sync_max_epochs=400, async_max_epochs=120
        )
        return run_tolerance_ladder("lr", "w8a", lctx)

    def test_six_configurations(self, ladder):
        assert len(ladder.entries) == 6

    def test_times_monotone_in_tolerance(self, ladder):
        assert ladder.times_monotone_in_tolerance()

    def test_winner_lookup_and_render(self, ladder):
        win = ladder.winner_at(0.10)
        assert win.label in ladder.render()
        assert "t(10%)" in ladder.render()

    def test_entry_lookup(self, ladder):
        e = ladder.entry("synchronous", "gpu")
        assert e.time_at(0.10) <= e.time_at(0.01) or not math.isfinite(e.time_at(0.01))
        with pytest.raises(KeyError):
            ladder.entry("synchronous", "tpu")
        with pytest.raises(KeyError):
            e.time_at(0.5)


class TestReproduceAll:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments import ExperimentContext, reproduce_all

        rctx = ExperimentContext(
            scale="tiny",
            tasks=("lr", "mlp"),
            datasets=("covtype", "w8a"),
            sync_max_epochs=300,
            async_max_epochs=100,
            tolerance=0.05,
        )
        return reproduce_all(rctx)

    def test_all_artifacts_present(self, report):
        assert len(report.table2.rows) == 4
        assert len(report.table3.rows) == 4
        assert len(report.fig7.panels) == 4
        assert report.fig6.points

    def test_verdicts_named_and_retrievable(self, report):
        names = {v.name for v in report.verdicts}
        assert "table2/gpu-always-fastest" in names
        assert "fig7/no-single-winner" in names
        v = report.verdict("table2/gpu-always-fastest")
        assert isinstance(v.reproduced, bool)
        with pytest.raises(KeyError):
            report.verdict("nope")

    def test_comparison_tables_render(self, report):
        # tiny grid lacks some paper cells; the comparisons silently
        # restrict themselves to the regenerated subset.
        out2 = report.comparison_table2()
        out3 = report.comparison_table3()
        assert "paper vs ours" in out2 and "paper vs ours" in out3
        assert "covtype" in out2 and "real-sim" not in out2

    def test_verdict_rendering(self, report):
        out = report.render_verdicts()
        assert "claim" in out and "verdict" in out
