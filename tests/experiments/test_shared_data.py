"""Shared-memory dataset lifecycle and the warm worker pool.

The grid's performance machinery must be invisible in the numbers and
in /dev/shm: workers map the published datasets read-only, results stay
bit-identical with sharing on or off, the segments are unlinked on
every exit path (success, worker failure, quarantine), consecutive
grids reuse one warm pool, and reference optima are solved once per
(task, dataset) and dedupe through the result store.
"""

import os

import numpy as np
import pytest

from repro.datasets import load
from repro.datasets.registry import cache_contains, cache_evict
from repro.experiments import (
    ExperimentContext,
    GridCell,
    GridExecutor,
    ResultStore,
    SharedDatasetRegistry,
    active_registry,
    shutdown_grid_pool,
    warm_pool_info,
)
from repro.faults import CellRetryPolicy, FaultPlan
from repro.sgd.reference import clear_reference_cache
from repro.telemetry import Telemetry, keys
from repro.utils.errors import WorkerError

TASKS = ("lr",)
DATASETS = ("covtype", "w8a")


def make_ctx(**kw):
    return ExperimentContext(
        scale="tiny",
        tasks=TASKS,
        datasets=DATASETS,
        sync_max_epochs=150,
        async_max_epochs=50,
        tolerance=0.05,
        **kw,
    )


def async_cells():
    return [
        GridCell("lr", dataset, architecture, "asynchronous")
        for dataset in DATASETS
        for architecture in ("cpu-par", "gpu")
    ]


def shm_segments() -> set[str]:
    try:
        return {p for p in os.listdir("/dev/shm") if p.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: no listable shm mount
        return set()


@pytest.fixture(autouse=True)
def clean_grid_state():
    """Each test starts and ends with no warm pool and no live segments."""
    shutdown_grid_pool()
    yield
    shutdown_grid_pool()


class TestRegistryLifecycle:
    def test_publish_attach_roundtrip_sparse(self):
        registry = SharedDatasetRegistry()
        try:
            desc = registry.publish("w8a", "tiny", None)
            assert desc.kind == "csr"
            # The installed cache view is the shm-backed dataset ...
            ds = load("w8a", "tiny")
            assert not ds.X.data.flags.writeable
            assert not ds.y.flags.writeable
            # ... and its arrays equal a locally generated copy
            # (evict the cache so load() regenerates instead of
            # returning the shm view back to us).
            cache_evict("w8a", "tiny", None)
            fresh = load("w8a", "tiny")
            np.testing.assert_array_equal(ds.X.indptr, fresh.X.indptr)
            np.testing.assert_array_equal(ds.X.indices, fresh.X.indices)
            np.testing.assert_array_equal(ds.X.data, fresh.X.data)
            np.testing.assert_array_equal(ds.y, fresh.y)
        finally:
            registry.close()

    def test_publish_dense_read_only(self):
        registry = SharedDatasetRegistry()
        try:
            desc = registry.publish("covtype", "tiny", None)
            assert desc.kind == "dense"
            ds = load("covtype", "tiny")
            assert not ds.X.flags.writeable
            with pytest.raises(ValueError):
                ds.X[0, 0] = 1.0
        finally:
            registry.close()

    def test_close_unlinks_and_evicts(self):
        before = shm_segments()
        registry = SharedDatasetRegistry()
        registry.publish("covtype", "tiny", None)
        assert shm_segments() != before
        registry.close()
        assert shm_segments() == before
        assert not cache_contains("covtype", "tiny", None)
        registry.close()  # idempotent

    def test_publish_skips_unknown_dataset(self):
        from repro.experiments.shared_data import ensure_published

        registry, published = ensure_published(
            [("no-such-dataset", "tiny", None, False), ("covtype", "tiny", None, False)]
        )
        assert published == 1
        assert registry.dataset_count == 1


class TestGridWithSharedData:
    def test_bit_identical_and_clean_teardown(self):
        before = shm_segments()
        serial = {
            cell: make_ctx().run(*cell.key) for cell in async_cells()
        }
        ctx = make_ctx(jobs=2)
        parallel = GridExecutor(ctx).execute(async_cells())
        assert shm_segments() != before  # segments live while the grid runs
        for cell, expected in serial.items():
            got = parallel[cell]
            assert got.curve.losses == expected.curve.losses
            assert got.time_per_iter == expected.time_per_iter
        shutdown_grid_pool()
        assert shm_segments() == before

    def test_no_shared_data_opt_out(self):
        before = shm_segments()
        ctx = make_ctx(jobs=2, shared_data=False)
        results = GridExecutor(ctx).execute(async_cells())
        assert len(results) == len(async_cells())
        assert shm_segments() == before
        assert active_registry() is None

    def test_segments_unlinked_after_worker_failure(self, monkeypatch):
        before = shm_segments()
        cell = GridCell("lr", "covtype", "cpu-par", "asynchronous")
        monkeypatch.setenv("REPRO_GRID_TEST_CRASH", f"{cell.label()}:11")
        with pytest.raises(WorkerError):
            GridExecutor(make_ctx(jobs=2)).execute(async_cells())
        # The failure retired the pool; the segments are reclaimed by
        # the explicit shutdown (or atexit), never leaked.
        assert warm_pool_info() is None
        shutdown_grid_pool()
        assert shm_segments() == before

    def test_segments_unlinked_after_quarantine(self):
        before = shm_segments()
        ctx = make_ctx(
            jobs=2,
            keep_going=True,
            fault_plan=FaultPlan.parse(["cell-nan@1"]),
            retry=CellRetryPolicy(
                max_attempts=1, divergence_retries=0, base_delay=0.01
            ),
        )
        results = GridExecutor(ctx).execute(async_cells())
        assert len(results) < len(async_cells())  # something was quarantined
        assert ctx.failures
        shutdown_grid_pool()
        assert shm_segments() == before


class TestWarmPool:
    def test_pool_reused_across_grids(self):
        tel1 = Telemetry()
        GridExecutor(make_ctx(jobs=2, telemetry=tel1)).execute(async_cells())
        assert tel1.counters()[keys.GRID_POOL_CREATED] == 1
        info = warm_pool_info()
        assert info is not None and info["jobs"] == 2

        tel2 = Telemetry()
        GridExecutor(make_ctx(jobs=2, telemetry=tel2)).execute(async_cells())
        counters = tel2.counters()
        assert keys.GRID_POOL_CREATED not in counters
        assert counters[keys.GRID_POOL_REUSED] == 1
        assert warm_pool_info()["generation"] == info["generation"]

    def test_job_count_change_rebuilds_pool(self):
        GridExecutor(make_ctx(jobs=2)).execute(async_cells())
        first = warm_pool_info()["generation"]
        GridExecutor(make_ctx(jobs=3)).execute(async_cells())
        assert warm_pool_info()["generation"] == first + 1

    def test_resumed_grid_keeps_pool_warm(self, tmp_path):
        store = ResultStore(tmp_path / "grid")
        GridExecutor(make_ctx(jobs=2, store=store)).execute(async_cells())
        info = warm_pool_info()
        assert info is not None

        tel = Telemetry()
        ctx = make_ctx(jobs=2, store=store, resume=True, telemetry=tel)
        GridExecutor(ctx).execute(async_cells())
        counters = tel.counters()
        assert counters[keys.GRID_CELLS_RESUMED] == len(async_cells())
        assert keys.GRID_CELLS_EXECUTED not in counters
        # Nothing ran, so the warm pool was neither used nor rebuilt.
        assert warm_pool_info() == info


class TestReferenceDedup:
    def test_reference_solved_once_and_stored(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        clear_reference_cache()
        store = ResultStore(tmp_path / "grid")
        tel = Telemetry()
        cells = [
            GridCell("lr", "covtype", arch, "asynchronous")
            for arch in ("cpu-par", "gpu")
        ]
        GridExecutor(make_ctx(jobs=2, store=store, telemetry=tel)).execute(cells)
        counters = tel.counters()
        assert counters[keys.GRID_REFERENCE_COMPUTED] == 1
        assert store.references()  # persisted for future resumes

    def test_reference_reused_from_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        store = ResultStore(tmp_path / "grid")
        cells = [
            GridCell("lr", "covtype", arch, "asynchronous")
            for arch in ("cpu-par", "gpu")
        ]
        GridExecutor(make_ctx(jobs=2, store=store)).execute(cells)
        assert store.references()

        clear_reference_cache()  # fresh process simulation: memory gone
        tel = Telemetry()
        ctx = make_ctx(jobs=2, store=store, telemetry=tel)
        GridExecutor(ctx).execute(cells)
        counters = tel.counters()
        assert keys.GRID_REFERENCE_COMPUTED not in counters
        assert counters[keys.GRID_REFERENCE_REUSED] >= 1
