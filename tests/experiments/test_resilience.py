"""The resilient (keep-going) grid: retry, watchdog, quarantine, gaps.

The acceptance bar mirrors the executor's: a keep-going grid with no
faults must stay *bit-identical* to the serial path, transient faults
must heal through retries, persistent faults must quarantine as
structured :class:`CellFailure` records while every healthy cell
completes, stalls must be detected within the configured watchdog
window, and the table drivers must render partial grids with explicit
gap markers instead of aborting.
"""

import math
import time

import pytest

from repro.experiments import (
    CellFailure,
    ExperimentContext,
    GridCell,
    GridExecutor,
    ResultStore,
)
from repro.experiments.resilience import nan_to_gap, render_failure_section
from repro.faults import CellRetryPolicy, FaultPlan
from repro.telemetry import Telemetry, keys
from repro.utils.errors import CellQuarantinedError, WorkerError

TASKS = ("lr",)
DATASETS = ("covtype", "w8a")

#: Fast policy for tests: retries immediate, watchdog snappy.
FAST = dict(base_delay=0.01, heartbeat_timeout=30.0)


def make_ctx(**kw):
    kw.setdefault("keep_going", True)
    kw.setdefault("retry", CellRetryPolicy(**FAST))
    kw.setdefault("tasks", TASKS)
    kw.setdefault("datasets", DATASETS)
    return ExperimentContext(
        scale="tiny",
        sync_max_epochs=150,
        async_max_epochs=50,
        tolerance=0.05,
        **kw,
    )


def async_cells():
    """Async-only cells: one job each, submission index == position + 1."""
    return [
        GridCell("lr", dataset, architecture, "asynchronous")
        for dataset in DATASETS
        for architecture in ("cpu-seq", "cpu-par", "gpu")
    ]


def sync_cells():
    return [
        GridCell("lr", "covtype", architecture, "synchronous")
        for architecture in ("cpu-seq", "cpu-par", "gpu")
    ]


def assert_results_identical(a, b):
    assert a.curve.epochs == b.curve.epochs
    assert a.curve.losses == b.curve.losses
    assert a.time_per_iter == b.time_per_iter
    assert a.step_size == b.step_size
    assert a.diverged == b.diverged


@pytest.fixture(scope="module")
def serial_async():
    ctx = ExperimentContext(
        scale="tiny",
        tasks=TASKS,
        datasets=DATASETS,
        sync_max_epochs=150,
        async_max_epochs=50,
        tolerance=0.05,
    )
    return {cell: ctx.run(*cell.key) for cell in async_cells()}


class TestHealthyKeepGoing:
    def test_bit_identical_to_serial(self, serial_async):
        """keep_going changes supervision, never the numbers."""
        ctx = make_ctx(jobs=2)
        results = GridExecutor(ctx).execute(async_cells())
        assert not ctx.failures
        for cell, expected in serial_async.items():
            assert_results_identical(results[cell], expected)

    def test_jobs1_also_supervised(self, serial_async):
        """keep_going forces the resilient path even at jobs=1."""
        ctx = make_ctx(jobs=1)
        results = GridExecutor(ctx).execute(async_cells()[:2])
        for cell in async_cells()[:2]:
            assert_results_identical(results[cell], serial_async[cell])


class TestCrashRecovery:
    def test_transient_crash_healed_by_retry(self, serial_async):
        """cell-kill@1:w1 fires on attempt 1 only; attempt 2 heals it."""
        tel = Telemetry()
        ctx = make_ctx(
            jobs=2,
            telemetry=tel,
            fault_plan=FaultPlan.parse(["cell-kill@1:w1"]),
        )
        results = GridExecutor(ctx).execute(async_cells())
        assert not ctx.failures
        for cell, expected in serial_async.items():
            assert_results_identical(results[cell], expected)
        counters = tel.counters()
        assert counters[keys.GRID_RETRY_CRASHES] == 1
        assert counters[keys.GRID_RETRY_ATTEMPTS] == 1
        assert keys.GRID_QUARANTINE_CELLS not in counters

    def test_persistent_crash_quarantined(self):
        """A fault firing on every attempt exhausts the cap and
        quarantines; the rest of the grid completes."""
        tel = Telemetry()
        ctx = make_ctx(
            jobs=2,
            telemetry=tel,
            retry=CellRetryPolicy(max_attempts=2, **FAST),
            fault_plan=FaultPlan.parse(["cell-kill@1"]),
        )
        cells = async_cells()
        results = GridExecutor(ctx).execute(cells)
        assert cells[0] not in results
        assert set(results) == set(cells[1:])
        failure = ctx.failures[cells[0].key]
        assert failure.kind == "crash"
        assert failure.phase == "train"
        assert failure.attempts == 2
        assert len(failure.worker_pids) == 2
        assert not failure.budget_exhausted
        assert [e["kind"] for e in failure.error_chain] == ["crash", "crash"]
        assert "exit code 23" in failure.error_chain[-1]["message"]
        counters = tel.counters()
        assert counters[keys.GRID_QUARANTINE_CELLS] == 1
        assert counters[keys.GRID_RETRY_CRASHES] == 2

    def test_budget_exhaustion_flagged(self):
        """An empty shared budget forces quarantine on the first failure."""
        ctx = make_ctx(
            jobs=1,
            retry=CellRetryPolicy(max_attempts=3, max_restarts=0, **FAST),
            fault_plan=FaultPlan.parse(["cell-kill@1"]),
        )
        GridExecutor(ctx).execute(async_cells()[:1])
        (failure,) = ctx.failures.values()
        assert failure.budget_exhausted
        assert failure.attempts == 1  # no retry was affordable


class TestStallWatchdog:
    def test_stall_detected_within_window(self):
        """A wedged worker is killed by the heartbeat watchdog well
        before its 600-second sleep would ever return."""
        policy = CellRetryPolicy(max_attempts=1, base_delay=0.01, heartbeat_timeout=2.0)
        ctx = make_ctx(
            jobs=1,
            retry=policy,
            fault_plan=FaultPlan.parse(["cell-stall@1:600"]),
        )
        start = time.monotonic()
        GridExecutor(ctx).execute(async_cells()[:1])
        elapsed = time.monotonic() - start
        (failure,) = ctx.failures.values()
        assert failure.kind == "stall"
        assert "heartbeat watchdog" in failure.error_chain[-1]["message"]
        assert elapsed < 10 * policy.watchdog_window

    def test_deadline_watchdog(self):
        """With a per-attempt deadline tighter than the heartbeat, the
        deadline fires first."""
        ctx = make_ctx(
            jobs=1,
            retry=CellRetryPolicy(
                max_attempts=1, base_delay=0.01, heartbeat_timeout=None, deadline=1.5
            ),
            fault_plan=FaultPlan.parse(["cell-stall@1:600"]),
        )
        GridExecutor(ctx).execute(async_cells()[:1])
        (failure,) = ctx.failures.values()
        assert failure.kind == "stall"
        assert "deadline watchdog" in failure.error_chain[-1]["message"]


class TestDivergenceSentinel:
    def test_transient_divergence_healed_with_step_backoff(self, serial_async):
        """cell-nan@1:w1 poisons attempt 1; the sentinel retries at half
        the step size and the healed run records the backed-off step."""
        ctx = make_ctx(jobs=1, fault_plan=FaultPlan.parse(["cell-nan@1:w1"]))
        cell = async_cells()[0]
        results = GridExecutor(ctx).execute([cell])
        assert not ctx.failures
        assert results[cell].step_size == pytest.approx(
            0.5 * serial_async[cell].step_size
        )

    def test_persistent_divergence_quarantined(self):
        tel = Telemetry()
        ctx = make_ctx(
            jobs=1,
            telemetry=tel,
            retry=CellRetryPolicy(divergence_retries=1, **FAST),
            fault_plan=FaultPlan.parse(["cell-nan@1"]),
        )
        GridExecutor(ctx).execute(async_cells()[:1])
        (failure,) = ctx.failures.values()
        assert failure.kind == "divergence"
        assert failure.phase == "collect"
        assert failure.attempts == 2  # original + one step-backoff retry
        assert tel.counters()[keys.GRID_RETRY_DIVERGENCES] == 2


class TestQuarantineSemantics:
    def test_sync_base_quarantine_covers_all_architectures(self):
        """A dead sync base gaps out all three architectures it covers."""
        ctx = make_ctx(
            jobs=1,
            retry=CellRetryPolicy(max_attempts=1, **FAST),
            fault_plan=FaultPlan.parse(["cell-kill@1"]),
        )
        results = GridExecutor(ctx).execute(sync_cells())
        assert results == {}
        base_key = ("lr", "covtype", "cpu-seq", "synchronous")
        failure = ctx.failures[base_key]
        assert set(failure.covers) == {
            "lr/covtype/cpu-seq/synchronous",
            "lr/covtype/cpu-par/synchronous",
            "lr/covtype/gpu/synchronous",
        }
        for arch in ("cpu-seq", "cpu-par", "gpu"):
            assert ctx.failure_for("lr", "covtype", arch, "synchronous") is failure

    def test_quarantine_is_sticky_on_the_context(self):
        ctx = make_ctx(
            jobs=1,
            retry=CellRetryPolicy(max_attempts=1, **FAST),
            fault_plan=FaultPlan.parse(["cell-kill@1"]),
        )
        cell = async_cells()[0]
        GridExecutor(ctx).execute([cell])
        assert ctx.try_run(*cell.key) is None
        with pytest.raises(CellQuarantinedError) as err:
            ctx.run(*cell.key)
        assert err.value.failure is ctx.failures[cell.key]
        # A second execute skips the quarantined cell instead of
        # spending another retry budget on it.
        tel_records = GridExecutor(ctx)
        results = tel_records.execute([cell])
        assert results == {}
        assert tel_records.cell_records[-1]["source"] == "quarantined"

    def test_failure_persisted_to_store_and_manifest(self, tmp_path):
        from repro.telemetry import build_grid_manifest

        store = ResultStore(tmp_path / "grid")
        ctx = make_ctx(
            jobs=1,
            store=store,
            retry=CellRetryPolicy(max_attempts=1, **FAST),
            fault_plan=FaultPlan.parse(["cell-kill@1"]),
        )
        cells = async_cells()[:2]
        executor = GridExecutor(ctx)
        executor.execute(cells)
        # The healthy cell's result and the failed cell's post-mortem
        # land in the same store directory; len() counts only results.
        assert len(store) == 1
        (stored,) = store.failures()
        assert stored == ctx.failures[cells[0].key]
        manifest = build_grid_manifest(executor.cell_records, jobs=1)
        assert [f["failure"]["kind"] for f in manifest["failures"]] == ["crash"]
        assert {c["source"] for c in manifest["cells"]} == {"executed", "quarantined"}

    def test_failfast_behaviour_preserved(self, monkeypatch):
        """Without keep_going, a dead worker still aborts the grid."""
        cells = async_cells()
        monkeypatch.setenv("REPRO_GRID_TEST_CRASH", f"{cells[0].label()}:13")
        ctx = make_ctx(jobs=2, keep_going=False, retry=None)
        with pytest.raises(WorkerError) as err:
            GridExecutor(ctx).execute(cells)
        assert err.value.phase == "pool"


class TestDegradedRendering:
    @pytest.fixture()
    def gapped_ctx(self):
        """A context whose lr/covtype async cpu-seq cell is quarantined."""
        ctx = make_ctx(
            jobs=2,
            retry=CellRetryPolicy(max_attempts=1, **FAST),
            fault_plan=FaultPlan.parse(["cell-kill@1"]),
        )
        ctx.prefetch(ctx.grid_cells(strategies=("asynchronous",)))
        assert ctx.failures
        return ctx

    def test_table3_partial_gap_row(self, gapped_ctx):
        from repro.experiments import run_table3

        t3 = run_table3(gapped_ctx)
        row = t3.row("lr", "covtype")
        assert row.is_gap
        assert math.isnan(row.ttc_cpu_seq)
        # The surviving architectures keep their numbers.
        assert math.isfinite(row.tpi_gpu) and math.isfinite(row.tpi_cpu_par)
        rendered = t3.render()
        assert "quarantined cells (1" in rendered
        assert "lr/covtype/cpu-seq/asynchronous" in rendered
        # Healthy rows keep a full complement of numbers.
        assert not t3.row("lr", "w8a").is_gap

    def test_table2_gap_row_from_quarantined_base(self):
        from repro.experiments import run_table2

        ctx = make_ctx(
            jobs=1,
            datasets=("covtype",),
            retry=CellRetryPolicy(max_attempts=1, **FAST),
            fault_plan=FaultPlan.parse(["cell-kill@1"]),
        )
        t2 = run_table2(ctx)
        row = t2.row("lr", "covtype")
        assert row.is_gap
        rendered = t2.render()
        assert "quarantined cells" in rendered
        assert "gaps:" in rendered  # the base lists all covered cells

    def test_shape_checks_skip_gap_rows(self, gapped_ctx):
        from repro.experiments import run_table3

        t3 = run_table3(gapped_ctx)
        # Must not raise or return NaN-poisoned verdicts.
        assert isinstance(t3.cpu_always_wins(), bool)
        assert isinstance(t3.dense_parallel_slower_per_iter(), bool)


class TestResilienceHelpers:
    def test_nan_to_gap(self):
        assert nan_to_gap(math.nan) is None
        assert nan_to_gap(math.inf) == math.inf
        assert nan_to_gap(1.5) == 1.5
        assert nan_to_gap("lr") == "lr"

    def test_cell_failure_round_trip(self):
        failure = CellFailure(
            task="lr",
            dataset="covtype",
            architecture="cpu-seq",
            strategy="asynchronous",
            kind="crash",
            phase="train",
            attempts=2,
            error_chain=({"type": "WorkerCrash", "message": "x", "attempt": 1},),
            elapsed_seconds=1.25,
            worker_pids=(41, 42),
            budget_exhausted=True,
            covers=("lr/covtype/cpu-seq/asynchronous",),
        )
        assert CellFailure.from_dict(failure.describe()) == failure

    def test_summary_names_the_last_error(self):
        failure = CellFailure(
            task="lr",
            dataset="w8a",
            architecture="gpu",
            strategy="asynchronous",
            kind="stall",
            phase="train",
            attempts=3,
            error_chain=({"type": "WorkerStall", "message": "silent 2.0s"},),
        )
        summary = failure.summary()
        assert "lr/w8a/gpu/asynchronous" in summary
        assert "stall after 3 attempt(s)" in summary
        assert "WorkerStall: silent 2.0s" in summary

    def test_render_failure_section_empty_is_empty(self):
        assert render_failure_section([]) == ""
