"""Tests for LIBSVM format IO."""

import io

import numpy as np
import pytest

from repro.datasets import parse_libsvm_lines, read_libsvm, write_libsvm
from repro.datasets.registry import scaled_profile
from repro.datasets.synthetic import generate
from repro.utils.errors import DataFormatError


SAMPLE = """\
+1 1:0.5 3:1.25
-1 2:2.0
# a comment line
+1 1:1.0 2:1.0 4:1.0

-1 4:-3.5
"""


class TestParse:
    def test_basic(self):
        X, y = parse_libsvm_lines(io.StringIO(SAMPLE))
        assert X.shape == (4, 4)
        np.testing.assert_array_equal(y, [1.0, -1.0, 1.0, -1.0])
        dense = X.to_dense()
        assert dense[0, 0] == 0.5 and dense[0, 2] == 1.25
        assert dense[3, 3] == -3.5

    def test_explicit_feature_count(self):
        X, _ = parse_libsvm_lines(io.StringIO(SAMPLE), n_features=10)
        assert X.n_cols == 10

    def test_feature_count_too_small(self):
        with pytest.raises(DataFormatError, match="smaller than max"):
            parse_libsvm_lines(io.StringIO(SAMPLE), n_features=2)

    def test_zero_values_dropped(self):
        X, _ = parse_libsvm_lines(io.StringIO("+1 1:0.0 2:1.0\n"))
        assert X.nnz == 1

    def test_rejects_bad_label(self):
        with pytest.raises(DataFormatError, match="bad label"):
            parse_libsvm_lines(io.StringIO("abc 1:1\n"))

    def test_rejects_bad_pair(self):
        with pytest.raises(DataFormatError, match="bad pair"):
            parse_libsvm_lines(io.StringIO("+1 1:one\n"))

    def test_rejects_zero_index(self):
        with pytest.raises(DataFormatError, match=">= 1"):
            parse_libsvm_lines(io.StringIO("+1 0:1.0\n"))

    def test_rejects_non_increasing_indices(self):
        with pytest.raises(DataFormatError, match="strictly increasing"):
            parse_libsvm_lines(io.StringIO("+1 2:1.0 2:2.0\n"))

    def test_label_normalisation_12(self):
        """covtype.binary style {1, 2} labels map to {-1, +1}."""
        _, y = parse_libsvm_lines(io.StringIO("1 1:1\n2 1:1\n"))
        np.testing.assert_array_equal(y, [-1.0, 1.0])

    def test_label_normalisation_01(self):
        _, y = parse_libsvm_lines(io.StringIO("0 1:1\n1 1:1\n"))
        np.testing.assert_array_equal(y, [-1.0, 1.0])

    def test_rejects_multiclass(self):
        with pytest.raises(DataFormatError, match="binary"):
            parse_libsvm_lines(io.StringIO("1 1:1\n2 1:1\n3 1:1\n"))


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        ds = generate(scaled_profile("w8a", "tiny"), seed=0)
        path = tmp_path / "w8a.libsvm"
        write_libsvm(ds, path)
        back = read_libsvm(path, n_features=ds.n_features)
        np.testing.assert_array_equal(back.y, ds.y)
        np.testing.assert_allclose(back.X.to_dense(), ds.X.to_dense(), rtol=1e-9)

    def test_read_builds_realised_profile(self, tmp_path):
        ds = generate(scaled_profile("w8a", "tiny"), seed=0)
        path = tmp_path / "w8a.libsvm"
        write_libsvm(ds, path)
        back = read_libsvm(path)
        assert back.profile.n_examples == ds.n_examples
        assert back.profile.nnz_max == int(ds.X.row_nnz.max())

    def test_read_from_filelike(self):
        buf = io.StringIO(SAMPLE)
        ds = read_libsvm(buf, name="sample")
        assert ds.name == "sample"
        assert ds.n_examples == 4
