"""Tests for the Table I dataset profiles and scaling."""

import pytest

from repro.datasets import DATASET_NAMES, get_profile
from repro.utils.errors import ConfigurationError
from repro.utils.units import MiB


class TestPaperProfiles:
    def test_all_five_datasets(self):
        assert set(DATASET_NAMES) == {"covtype", "w8a", "real-sim", "rcv1", "news"}

    def test_table1_row_covtype(self):
        p = get_profile("covtype")
        assert (p.n_examples, p.n_features) == (581_012, 54)
        assert p.dense
        assert p.sparsity_pct == pytest.approx(100.0)
        assert p.mlp_arch == (54, 10, 5, 2)

    def test_table1_row_news(self):
        p = get_profile("news")
        assert (p.n_examples, p.n_features) == (19_996, 1_355_191)
        assert p.nnz_max == 16_423
        assert p.sparsity_pct == pytest.approx(0.0336, rel=0.05)
        assert p.mlp_arch[0] == 300

    def test_sparsity_matches_paper_column(self):
        # Table I's LR & SVM sparsity column values
        expected = {"w8a": 3.88, "real-sim": 0.25, "rcv1": 0.16, "news": 0.03}
        for name, pct in expected.items():
            assert get_profile(name).sparsity_pct == pytest.approx(pct, abs=0.035)

    def test_w8a_sparse_size_near_table1(self):
        # Table I: w8a sparse ~4.4MB (float32-era); ours is float64-based
        # CSR so within a small constant factor.
        p = get_profile("w8a")
        assert 4 * MiB < p.sparse_bytes < 12 * MiB

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            get_profile("mnist")


class TestScaling:
    def test_preserves_density(self):
        p = get_profile("news")
        s = p.scaled(2_000, 10_000)
        assert s.sparsity_pct == pytest.approx(p.sparsity_pct, rel=0.35)

    def test_preserves_dispersion(self):
        p = get_profile("news")
        s = p.scaled(2_000, 10_000)
        assert s.nnz_dispersion == pytest.approx(p.nnz_dispersion, rel=0.35)

    def test_no_growth(self):
        p = get_profile("covtype")
        s = p.scaled(10**9, 10**9)
        assert (s.n_examples, s.n_features) == (p.n_examples, p.n_features)

    def test_mlp_input_capped_at_features(self):
        p = get_profile("news")
        s = p.scaled(1000, 200)
        assert s.mlp_arch[0] == 200

    def test_invariants_hold_after_scaling(self):
        for name in DATASET_NAMES:
            s = get_profile(name).scaled(500, 700)
            assert 0 <= s.nnz_min <= s.nnz_avg <= s.nnz_max <= s.n_features

    def test_rejects_bad_caps(self):
        with pytest.raises(ConfigurationError):
            get_profile("w8a").scaled(0, 10)


class TestValidation:
    def test_rejects_inconsistent_nnz(self):
        from repro.datasets.profiles import DatasetProfile

        with pytest.raises(ConfigurationError):
            DatasetProfile(
                name="bad",
                n_examples=10,
                n_features=5,
                nnz_min=3,
                nnz_avg=2.0,  # min > avg
                nnz_max=4,
                mlp_arch=(5, 2),
                mlp_sparsity_pct=1.0,
            )
