"""Tests for the dataset registry (scales, caching, Table I rendering)."""

import pytest

from repro.datasets import SCALES, clear_cache, load, load_mlp, scaled_profile, table1
from repro.utils.errors import ConfigurationError


class TestScales:
    def test_known_scales(self):
        assert {"tiny", "small", "medium", "paper"} <= set(SCALES)

    def test_scaled_profile_applies_caps(self):
        p = scaled_profile("news", "tiny")
        spec = SCALES["tiny"]
        assert p.n_examples <= spec.max_examples
        assert p.n_features <= spec.max_features

    def test_paper_scale_is_full_size(self):
        p = scaled_profile("covtype", "paper")
        assert p.n_examples == 581_012

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError, match="unknown scale"):
            scaled_profile("w8a", "huge")


class TestCaching:
    def test_same_key_same_object(self):
        a = load("w8a", "tiny", seed=11)
        b = load("w8a", "tiny", seed=11)
        assert a is b

    def test_different_seed_different_object(self):
        a = load("w8a", "tiny", seed=11)
        b = load("w8a", "tiny", seed=12)
        assert a is not b

    def test_mlp_cache_separate(self):
        base = load("w8a", "tiny", seed=11)
        mlp = load_mlp("w8a", "tiny", seed=11)
        assert mlp is not base
        assert mlp is load_mlp("w8a", "tiny", seed=11)

    def test_clear_cache(self):
        a = load("w8a", "tiny", seed=13)
        clear_cache()
        b = load("w8a", "tiny", seed=13)
        assert a is not b


class TestTable1:
    def test_renders_all_datasets(self):
        out = table1("tiny")
        for name in ("covtype", "w8a", "real-sim", "rcv1", "news"):
            assert name in out
        assert "MLP architecture" in out
        assert "54-10-5-2" in out
