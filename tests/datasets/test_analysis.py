"""Tests for the dataset structural analysis."""

import numpy as np
import pytest

from repro.datasets import load
from repro.datasets.analysis import analyze, gini


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 3.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini(v) > 0.99

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_scale_invariant(self, rng):
        v = rng.random(200)
        assert gini(v) == pytest.approx(gini(10 * v), abs=1e-12)


class TestAnalyze:
    @pytest.fixture(scope="class")
    def reports(self):
        return {name: analyze(load(name, "tiny")) for name in ("covtype", "w8a", "news")}

    def test_basic_fields(self, reports):
        r = reports["w8a"]
        assert r.n_examples == 256
        assert 0 < r.density < 0.1
        assert r.csr_bytes > 0 and r.dense_bytes > r.csr_bytes

    def test_covtype_fully_dense(self, reports):
        r = reports["covtype"]
        assert r.density == pytest.approx(1.0)
        assert r.nnz_dispersion == pytest.approx(1.0)
        assert r.mean_pairwise_overlap == pytest.approx(1.0)

    def test_risk_flags_track_the_paper(self, reports):
        # covtype: the coherence-storm dataset, no divergence risk
        assert reports["covtype"].hogwild_conflict_risk
        assert not reports["covtype"].gpu_async_divergence_risk
        # news: heavy-tailed rows -> divergence risk
        assert reports["news"].gpu_async_divergence_risk

    def test_popularity_skew_ordering(self, reports):
        """Zipf features: sparse text is far more popularity-skewed than
        the dense indicators."""
        assert reports["news"].popularity_gini > reports["covtype"].popularity_gini

    def test_cyclades_schedulability_flag(self, reports):
        assert not reports["covtype"].cyclades_schedulable

    def test_render(self, reports):
        out = reports["w8a"].render()
        assert "Gini" in out and "CSR footprint" in out

    def test_deterministic(self):
        a = analyze(load("w8a", "tiny"), seed=3)
        b = analyze(load("w8a", "tiny"), seed=3)
        assert a.mean_pairwise_overlap == b.mean_pairwise_overlap
