"""Tests for the MLP feature-grouping transform."""

import numpy as np
import pytest

from repro.datasets import group_features, load, load_mlp, mlp_dataset
from repro.utils.errors import ConfigurationError


class TestGroupFeatures:
    def test_dense_exact_average(self):
        X = np.arange(12, dtype=float).reshape(2, 6)
        out = group_features(X, 3)  # buckets of width 2
        expected = np.array([[0.5, 2.5, 4.5], [6.5, 8.5, 10.5]])
        np.testing.assert_allclose(out, expected)

    def test_zeros_count_in_denominator(self):
        """The paper averages over the full bucket width: zeros dilute."""
        X = np.array([[4.0, 0.0, 0.0, 0.0]])
        out = group_features(X, 2)
        np.testing.assert_allclose(out, [[2.0, 0.0]])

    def test_sparse_matches_dense_path(self, small_csr):
        dense = small_csr.to_dense()
        np.testing.assert_allclose(
            group_features(small_csr, 3), group_features(dense, 3), atol=1e-12
        )

    def test_uneven_bucket_widths(self):
        X = np.ones((1, 5))
        out = group_features(X, 2)  # widths 2 and 3
        np.testing.assert_allclose(out, [[1.0, 1.0]])

    def test_identity_when_n_groups_equals_d(self, small_csr):
        out = group_features(small_csr, small_csr.n_cols)
        np.testing.assert_array_equal(out, small_csr.to_dense())

    def test_rejects_bad_n_groups(self):
        with pytest.raises(ConfigurationError):
            group_features(np.ones((2, 4)), 0)
        with pytest.raises(ConfigurationError):
            group_features(np.ones((2, 4)), 5)


class TestMlpDataset:
    def test_width_matches_architecture(self):
        base = load("real-sim", "tiny")
        mlp = mlp_dataset(base)
        assert mlp.n_features == base.profile.mlp_input_width
        assert mlp.profile.mlp_arch[0] == mlp.n_features

    def test_grouping_increases_density(self):
        """Table I: 'most of the data sparsities increase on the
        transformed datasets' (real-sim 0.25% -> 42.64%)."""
        base = load("real-sim", "tiny")
        mlp = mlp_dataset(base)
        assert mlp.density > base.density

    def test_output_dense_float(self):
        mlp = load_mlp("rcv1", "tiny")
        assert isinstance(mlp.X, np.ndarray)
        assert mlp.X.dtype == np.float64

    def test_labels_preserved(self):
        base = load("w8a", "tiny")
        mlp = mlp_dataset(base)
        np.testing.assert_array_equal(mlp.y, base.y)

    def test_covtype_untouched_width(self):
        """covtype's MLP input equals its native 54 features."""
        mlp = load_mlp("covtype", "tiny")
        assert mlp.n_features == 54


class TestAliasing:
    def test_mlp_transform_never_mutates_source(self):
        """Regression: the identity-width path (covtype, w8a) used to
        return the source array, and the in-place row normalisation
        then corrupted the cached base dataset."""
        import numpy as np

        from repro.datasets import clear_cache, load, load_mlp

        clear_cache()
        base = load("covtype", "tiny")
        snapshot = np.array(base.X, copy=True)
        load_mlp("covtype", "tiny")
        np.testing.assert_array_equal(base.X, snapshot)
        clear_cache()
