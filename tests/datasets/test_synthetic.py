"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import generate
from repro.datasets.registry import scaled_profile
from repro.linalg import CSRMatrix


class TestSparseGeneration:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate(scaled_profile("w8a", "tiny"), seed=0)

    def test_shape_matches_profile(self, ds):
        p = scaled_profile("w8a", "tiny")
        assert ds.X.shape == (p.n_examples, p.n_features)

    def test_is_csr(self, ds):
        assert ds.is_sparse
        assert isinstance(ds.X, CSRMatrix)

    def test_density_within_band(self, ds):
        p = scaled_profile("w8a", "tiny")
        assert 0.4 * p.sparsity_pct <= 100 * ds.density <= 2.5 * p.sparsity_pct

    def test_nnz_extremes_realised(self, ds):
        p = scaled_profile("w8a", "tiny")
        row_nnz = ds.X.row_nnz
        assert row_nnz.max() <= p.nnz_max
        assert row_nnz.min() >= p.nnz_min
        assert row_nnz.max() >= 0.5 * p.nnz_max  # extreme injected by design

    def test_rows_unit_normalised(self, ds):
        sq = np.zeros(ds.n_examples)
        for i in range(ds.n_examples):
            _, val = ds.X.row(i)
            sq[i] = float(val @ val)
        nonempty = ds.X.row_nnz > 0
        np.testing.assert_allclose(sq[nonempty], 1.0, atol=1e-9)

    def test_labels_balanced_pm1(self, ds):
        assert set(np.unique(ds.y)) == {-1.0, 1.0}
        assert abs(float(np.mean(ds.y > 0)) - 0.5) < 0.02

    def test_deterministic(self):
        a = generate(scaled_profile("w8a", "tiny"), seed=3)
        b = generate(scaled_profile("w8a", "tiny"), seed=3)
        np.testing.assert_array_equal(a.X.data, b.X.data)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        a = generate(scaled_profile("w8a", "tiny"), seed=3)
        b = generate(scaled_profile("w8a", "tiny"), seed=4)
        assert a.X.nnz != b.X.nnz or not np.array_equal(a.X.data, b.X.data)

    def test_labels_learnable(self, ds):
        """A few serial SGD epochs must beat chance comfortably."""
        from repro.models import LogisticRegression
        from repro.utils import make_rng

        model = LogisticRegression(ds.n_features)
        w = model.init_params(make_rng(0))
        order = np.arange(ds.n_examples)
        for _ in range(15):
            model.serial_sgd_epoch(ds.X, ds.y, order, w, 1.0)
        assert model.accuracy(ds.X, ds.y, w) > 0.75


class TestDenseGeneration:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate(scaled_profile("covtype", "tiny"), seed=0)

    def test_fully_dense(self, ds):
        assert not ds.is_sparse
        assert ds.density == 1.0  # Table I: covtype sparsity 100%

    def test_c_contiguous_float64(self, ds):
        assert ds.X.flags["C_CONTIGUOUS"]
        assert ds.X.dtype == np.float64

    def test_balanced_labels(self, ds):
        assert abs(float(np.mean(ds.y > 0)) - 0.5) < 0.02


class TestDatasetContainer:
    def test_to_dense_and_as_csr_roundtrip(self):
        ds = generate(scaled_profile("w8a", "tiny"), seed=0)
        np.testing.assert_array_equal(ds.to_dense(), ds.X.to_dense())
        ds2 = generate(scaled_profile("covtype", "tiny"), seed=0)
        np.testing.assert_array_equal(ds2.as_csr().to_dense(), ds2.X)

    def test_summary_keys(self):
        ds = generate(scaled_profile("w8a", "tiny"), seed=0)
        s = ds.summary()
        for key in ("n_examples", "nnz_avg", "sparsity_pct", "positive_fraction"):
            assert key in s
