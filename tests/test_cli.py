"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_table_commands_registered(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9"):
            args = parser.parse_args([cmd, "--scale", "tiny"])
            assert args.command == cmd
            assert args.scale == "tiny"

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.task == "lr"
        assert args.architecture == "cpu-par"

    def test_rejects_unknown_task(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--task", "cnn"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "covtype" in out and "MLP architecture" in out

    def test_train(self, capsys):
        rc = main(
            [
                "train", "--task", "lr", "--dataset", "w8a", "--scale", "tiny",
                "--step", "1.0", "--epochs", "40",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "time_per_iter_ms" in out
        assert "epochs_to_1pct" in out

    def test_gridsearch(self, capsys):
        rc = main(
            [
                "gridsearch", "--task", "lr", "--dataset", "w8a", "--scale", "tiny",
                "--architecture", "cpu-seq", "--epochs", "60",
                "--tolerance", "0.10",
            ]
        )
        out = capsys.readouterr().out
        assert "step=" in out
        if rc == 0:
            assert "best step size" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--scale", "tiny"]) == 0
        assert "par/seq" in capsys.readouterr().out


class TestLadderCommand:
    def test_ladder(self, capsys):
        rc = main(["ladder", "--task", "lr", "--dataset", "w8a", "--scale", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Tolerance ladder" in out
        assert "crossover" in out
