"""Shared fixtures for the repro test suite.

All fixtures are deterministic: dataset generation, model init and
schedules derive from fixed seeds, so failures reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clear_cache, load, load_mlp
from repro.linalg import CSRMatrix
from repro.models import make_model
from repro.sgd import clear_reference_cache
from repro.utils import make_rng


@pytest.fixture(scope="session", autouse=True)
def _clean_caches():
    """Start the session with empty dataset/reference caches."""
    clear_cache()
    clear_reference_cache()
    yield


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return make_rng(1234)


@pytest.fixture(scope="session")
def tiny_sparse():
    """The tiny-scale w8a dataset (sparse CSR, has empty rows)."""
    return load("w8a", "tiny")


@pytest.fixture(scope="session")
def tiny_dense():
    """The tiny-scale covtype dataset (fully dense)."""
    return load("covtype", "tiny")


@pytest.fixture(scope="session")
def tiny_mlp_data():
    """The tiny-scale w8a dataset transformed for the MLP task."""
    return load_mlp("w8a", "tiny")


@pytest.fixture(scope="session")
def lr_tiny(tiny_sparse):
    """(model, dataset) pair: LR on tiny w8a."""
    return make_model("lr", tiny_sparse), tiny_sparse


@pytest.fixture()
def small_csr(rng) -> CSRMatrix:
    """A small random CSR matrix with empty rows and varied lengths."""
    dense = rng.standard_normal((12, 9))
    dense[dense < 0.4] = 0.0
    dense[3, :] = 0.0  # guaranteed empty row
    return CSRMatrix.from_dense(dense)
