"""Tests for the fault-plan / recovery-policy data layer.

Plans are pure data: parsing, validation and seeded resolution are
exact, deterministic functions — no processes involved.  The chaos
tests in ``tests/parallel/test_chaos.py`` exercise the behaviour.
"""

import pytest

from repro.faults import (
    ALL_FAULT_KINDS,
    FAULT_KINDS,
    GRID_FAULT_KINDS,
    NODE_FAULT_KINDS,
    RECOVERY_MODES,
    SERVER_FAULT_KINDS,
    WIRE_FAULT_KINDS,
    CellRetryPolicy,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
)
from repro.faults.plan import DEFAULT_DELAY_SECONDS, STALL_TIMEOUT_FACTOR
from repro.utils.errors import ConfigurationError


class TestFaultSpecParse:
    def test_minimal(self):
        spec = FaultSpec.parse("kill@3")
        assert spec == FaultSpec(kind="kill", epoch=3)
        assert spec.worker is None and spec.seconds is None

    def test_worker_token(self):
        assert FaultSpec.parse("stall@2:w1") == FaultSpec(
            kind="stall", epoch=2, worker=1
        )

    def test_worker_and_seconds(self):
        assert FaultSpec.parse("delay@1:w0:0.25") == FaultSpec(
            kind="delay", epoch=1, worker=0, seconds=0.25
        )

    def test_bare_number_is_seconds(self):
        assert FaultSpec.parse("stall@4:1.5") == FaultSpec(
            kind="stall", epoch=4, seconds=1.5
        )

    def test_case_and_whitespace_tolerated(self):
        assert FaultSpec.parse("  KILL@2  ").kind == "kill"

    @pytest.mark.parametrize(
        "text", ["kill3", "@3", "kill@x", "kill@1:wx", "kill@1:abc"]
    )
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse(text)


class TestFaultSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="segfault", epoch=1)

    def test_epoch_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="kill", epoch=0)

    def test_worker_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="kill", epoch=1, worker=-1)

    def test_seconds_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="delay", epoch=1, seconds=0.0)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind, epoch=1).kind == kind


class TestFaultPlan:
    def test_parse_builds_all_specs(self):
        plan = FaultPlan.parse(["kill@2", "nan@3:w0"], seed=5)
        assert len(plan.specs) == 2
        assert plan.seed == 5

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan(specs=())
        assert FaultPlan.single("kill", 1)

    def test_resolve_is_deterministic(self):
        plan = FaultPlan.single("kill", 2)  # seeded worker choice
        a = plan.resolve(4, run_seed=99, epoch_timeout=10.0)
        b = plan.resolve(4, run_seed=99, epoch_timeout=10.0)
        assert a == b

    def test_plan_seed_overrides_run_seed(self):
        plan = FaultPlan.single("kill", 2, seed=1)
        a = plan.resolve(4, run_seed=7, epoch_timeout=10.0)
        b = plan.resolve(4, run_seed=8, epoch_timeout=10.0)
        assert a == b

    def test_resolve_respects_pinned_worker(self):
        plan = FaultPlan.single("kill", 2, worker=1)
        assigned = plan.resolve(3, run_seed=99, epoch_timeout=10.0)
        assert list(assigned) == [1]
        assert assigned[1] == [
            {"kind": "kill", "epoch": 2, "seconds": DEFAULT_DELAY_SECONDS}
        ]

    def test_resolve_rejects_out_of_range_worker(self):
        plan = FaultPlan.single("kill", 1, worker=5)
        with pytest.raises(ConfigurationError, match="only"):
            plan.resolve(2, run_seed=0, epoch_timeout=10.0)

    def test_stall_default_outlives_timeout(self):
        plan = FaultPlan.single("stall", 1, worker=0)
        assigned = plan.resolve(1, run_seed=0, epoch_timeout=2.0)
        assert assigned[0][0]["seconds"] == pytest.approx(2.0 * STALL_TIMEOUT_FACTOR)

    def test_explicit_seconds_kept(self):
        plan = FaultPlan.single("delay", 1, worker=0, seconds=0.4)
        assigned = plan.resolve(1, run_seed=0, epoch_timeout=2.0)
        assert assigned[0][0]["seconds"] == pytest.approx(0.4)

    def test_describe_round_trips_specs(self):
        plan = FaultPlan.parse(["kill@2", "stall@3:w1:9"], seed=4)
        assert plan.describe() == [
            {"kind": "kill", "epoch": 2, "worker": None, "seconds": None},
            {"kind": "stall", "epoch": 3, "worker": 1, "seconds": 9.0},
        ]


class TestGridFaultKinds:
    """Grid-level specs: epoch = job index, worker = attempts bound."""

    def test_kind_registries(self):
        assert GRID_FAULT_KINDS == ("cell-kill", "cell-stall", "cell-nan")
        assert NODE_FAULT_KINDS == ("node-kill", "node-stall")
        assert SERVER_FAULT_KINDS == ("server-kill", "server-stall")
        assert WIRE_FAULT_KINDS == (
            "conn-drop",
            "frame-delay",
            "frame-corrupt",
        )
        assert ALL_FAULT_KINDS == (
            FAULT_KINDS
            + GRID_FAULT_KINDS
            + NODE_FAULT_KINDS
            + SERVER_FAULT_KINDS
            + WIRE_FAULT_KINDS
        )

    def test_grid_kinds_parse_with_the_shared_grammar(self):
        assert FaultSpec.parse("cell-kill@3:w1") == FaultSpec(
            kind="cell-kill", epoch=3, worker=1
        )
        assert FaultSpec.parse("cell-stall@2:600") == FaultSpec(
            kind="cell-stall", epoch=2, seconds=600.0
        )

    def test_resolve_grid_maps_job_index_to_fault(self):
        plan = FaultPlan.parse(["cell-kill@1", "cell-nan@3:w2", "cell-stall@2:9"])
        assert plan.resolve_grid(jobs=3) == {
            1: {"kind": "cell-kill", "seconds": None, "attempts": None},
            2: {"kind": "cell-stall", "seconds": 9.0, "attempts": None},
            3: {"kind": "cell-nan", "seconds": None, "attempts": 2},
        }

    def test_resolve_grid_ignores_shm_kinds_and_vice_versa(self):
        plan = FaultPlan.parse(["kill@1:w0", "cell-kill@1"])
        assert plan.resolve_grid(jobs=2) == {
            1: {"kind": "cell-kill", "seconds": None, "attempts": None}
        }
        shm = plan.resolve(workers=2, run_seed=0, epoch_timeout=5.0)
        assert shm == {0: [{"kind": "kill", "epoch": 1, "seconds": 0.05}]}

    def test_resolve_grid_drops_out_of_range_and_duplicate_indices(self):
        plan = FaultPlan.parse(["cell-kill@5", "cell-kill@1", "cell-nan@1"])
        resolved = plan.resolve_grid(jobs=2)
        # Index 5 is beyond the grid; the first spec targeting 1 wins.
        assert resolved == {
            1: {"kind": "cell-kill", "seconds": None, "attempts": None}
        }


class TestNodeFaultKinds:
    """Node-level specs target parameter-server worker processes."""

    def test_node_kinds_parse_with_the_shared_grammar(self):
        assert FaultSpec.parse("node-kill@2") == FaultSpec(
            kind="node-kill", epoch=2
        )
        assert FaultSpec.parse("node-stall@3:w1:2.5") == FaultSpec(
            kind="node-stall", epoch=3, worker=1, seconds=2.5
        )

    def test_resolve_nodes_pins_workers(self):
        plan = FaultPlan.parse(["node-kill@2:w1", "node-stall@3:w0:1.5"])
        assert plan.resolve_nodes(2, run_seed=0, epoch_timeout=10.0) == {
            1: [{"kind": "node-kill", "epoch": 2, "seconds": 0.0}],
            0: [{"kind": "node-stall", "epoch": 3, "seconds": 1.5}],
        }

    def test_resolve_nodes_is_deterministic(self):
        plan = FaultPlan.parse(["node-kill@1"])
        a = plan.resolve_nodes(4, run_seed=7, epoch_timeout=5.0)
        b = plan.resolve_nodes(4, run_seed=7, epoch_timeout=5.0)
        assert a == b

    def test_node_stall_default_outlives_timeout(self):
        plan = FaultPlan.parse(["node-stall@1:w0"])
        resolved = plan.resolve_nodes(1, run_seed=0, epoch_timeout=2.0)
        assert resolved[0][0]["seconds"] == 2.0 * STALL_TIMEOUT_FACTOR

    def test_resolve_nodes_rejects_out_of_range_worker(self):
        plan = FaultPlan.parse(["node-kill@1:w3"])
        with pytest.raises(ConfigurationError):
            plan.resolve_nodes(2, run_seed=0, epoch_timeout=5.0)

    def test_families_resolve_independently(self):
        """A plan mixing shm, grid and node kinds routes each family to
        its own resolver and nothing leaks across."""
        plan = FaultPlan.parse(["kill@1:w0", "cell-kill@1", "node-kill@2:w1"])
        assert plan.resolve(workers=2, run_seed=0, epoch_timeout=5.0) == {
            0: [{"kind": "kill", "epoch": 1, "seconds": 0.05}]
        }
        assert plan.resolve_grid(jobs=1) == {
            1: {"kind": "cell-kill", "seconds": None, "attempts": None}
        }
        assert plan.resolve_nodes(2, run_seed=0, epoch_timeout=5.0) == {
            1: [{"kind": "node-kill", "epoch": 2, "seconds": 0.0}]
        }


class TestCellRetryPolicy:
    def test_defaults(self):
        policy = CellRetryPolicy()
        assert policy.max_attempts == 3
        assert policy.max_restarts == 8
        assert policy.divergence_retries == 1
        assert policy.step_backoff == 0.5
        assert policy.deadline is None
        assert policy.heartbeat_timeout == 60.0

    def test_retry_delay_is_exponential(self):
        policy = CellRetryPolicy(base_delay=0.1, backoff=2.0)
        assert policy.retry_delay(0) == pytest.approx(0.1)
        assert policy.retry_delay(3) == pytest.approx(0.8)

    def test_watchdog_window_is_tightest_bound(self):
        tight = CellRetryPolicy(deadline=10.0, heartbeat_timeout=3.0)
        assert tight.watchdog_window == 3.0
        unbounded = CellRetryPolicy(deadline=None, heartbeat_timeout=None)
        assert unbounded.watchdog_window is None

    @pytest.mark.parametrize(
        "bad",
        [
            dict(max_attempts=0),
            dict(max_restarts=-1),
            dict(backoff=0.9),
            dict(base_delay=-0.1),
            dict(deadline=0.0),
            dict(heartbeat_timeout=0.0),
            dict(divergence_retries=-1),
            dict(step_backoff=1.0),
        ],
    )
    def test_validation(self, bad):
        from repro.utils.errors import ConfigurationError as CfgErr

        with pytest.raises(CfgErr):
            CellRetryPolicy(**bad)


class TestRecoveryPolicy:
    def test_defaults(self):
        policy = RecoveryPolicy()
        assert policy.max_restarts == 1
        assert policy.backoff == 2.0
        assert policy.mode in RECOVERY_MODES
        assert policy.scrub_nans is True

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(max_restarts=-1)

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(backoff=0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown recovery mode"):
            RecoveryPolicy(mode="reincarnate")
