"""Sanity checks over the example scripts.

The examples run at `small` scale (seconds to minutes each), so the
test suite verifies structure — each compiles, documents itself, and
exposes a ``main()`` — and executes the fastest one end to end.
Full runs are exercised manually / by the benchmark artifacts.
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


class TestExampleStructure:
    def test_expected_inventory(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "architecture_advisor",
            "hogwild_sparsity_study",
            "mlp_scaling_study",
            "custom_dataset_libsvm",
            "matrix_factorization",
            "parallel_strategies",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_compiles_with_docstring_and_main(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.stem} lacks a module docstring"
        func_names = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        assert "main" in func_names, f"{path.stem} lacks main()"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_mentions_how_to_run(self, path):
        assert "Run:" in path.read_text(encoding="utf-8")


class TestQuickstartExecution:
    def test_quickstart_runs_clean(self, tmp_path):
        """Execute the quickstart end to end in a subprocess."""
        script = next(p for p in EXAMPLES if p.stem == "quickstart")
        env = {"REPRO_CACHE_DIR": str(tmp_path), "PATH": "/usr/bin:/bin"}
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=600,
            env={**env},
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "time per iteration" in proc.stdout
        assert "within" in proc.stdout
