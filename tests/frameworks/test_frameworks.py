"""Tests for the framework baseline executors."""

import pytest

from repro.frameworks import (
    BIDMACH_LIKE,
    OURS,
    TENSORFLOW_LIKE,
    FrameworkExecutor,
)
from repro.linalg import recording
from repro.models import make_model
from repro.sgd.runner import full_scale_factor, working_set_bytes
from repro.utils import derive_rng


@pytest.fixture(scope="module")
def sparse_trace():
    """A traced LR epoch on sparse data (w8a), at paper scale."""
    from repro.datasets import load

    ds = load("w8a", "tiny")
    model = make_model("lr", ds)
    w = model.init_params(derive_rng(0, "w"))
    with recording() as tr:
        model.full_grad(ds.X, ds.y, w)
    return tr.scaled(full_scale_factor(ds, "lr")), working_set_bytes(ds, model, "lr")


@pytest.fixture(scope="module")
def mlp_trace():
    from repro.datasets import load_mlp

    ds = load_mlp("w8a", "tiny")
    model = make_model("mlp", ds)
    w = model.init_params(derive_rng(0, "w"))
    with recording() as tr:
        model.full_grad(ds.X, ds.y, w)
    return tr.scaled(full_scale_factor(ds, "mlp")), working_set_bytes(ds, model, "mlp")


class TestProfiles:
    def test_profile_dispositions(self):
        assert TENSORFLOW_LIKE.cpu_policy.gemm_min_result_size == 0
        assert BIDMACH_LIKE.gpu_irregular_penalty > OURS.gpu_irregular_penalty

    def test_models_reflect_overheads(self):
        tf_gpu = TENSORFLOW_LIKE.gpu_model()
        ours_gpu = OURS.gpu_model()
        assert (
            tf_gpu.spec.kernel_launch_overhead > ours_gpu.spec.kernel_launch_overhead
        )


class TestExecutor:
    def test_timing_fields_positive(self, sparse_trace):
        trace, ws = sparse_trace
        t = FrameworkExecutor(OURS).timing(trace, ws)
        assert t.gpu > 0 and t.cpu_parallel > 0 and t.cpu_sequential > t.cpu_parallel

    def test_bidmach_gpu_slower_on_sparse(self, sparse_trace):
        """The paper's Fig. 8 finding: BIDMach's dense-optimised GPU
        kernels lose to ViennaCL's sparse-specialised ones."""
        trace, ws = sparse_trace
        ours = FrameworkExecutor(OURS).timing(trace, ws)
        bid = FrameworkExecutor(BIDMACH_LIKE).timing(trace, ws)
        assert bid.gpu > ours.gpu
        assert ours.gpu_speedup_over_cpu >= 0.9 * bid.gpu_speedup_over_cpu

    def test_tensorflow_cpu_parallelises_mlp_gemms(self, mlp_trace):
        """TF's Eigen kernels have no ViennaCL threshold: its parallel
        CPU epoch is faster, hence its GPU speedup ratio is smaller
        (the paper's Fig. 9 shape)."""
        trace, ws = mlp_trace
        ours = FrameworkExecutor(OURS).timing(trace, ws)
        tf = FrameworkExecutor(TENSORFLOW_LIKE).timing(trace, ws)
        assert tf.cpu_parallel < ours.cpu_parallel
        assert ours.gpu_speedup_over_cpu > tf.gpu_speedup_over_cpu

    def test_cpu_parallel_speedup_property(self, sparse_trace):
        trace, ws = sparse_trace
        t = FrameworkExecutor(OURS).timing(trace, ws)
        assert t.cpu_parallel_speedup == pytest.approx(
            t.cpu_sequential / t.cpu_parallel
        )

    def test_thread_override(self, sparse_trace):
        trace, ws = sparse_trace
        few = FrameworkExecutor(OURS, threads=4).timing(trace, ws)
        many = FrameworkExecutor(OURS, threads=56).timing(trace, ws)
        assert many.cpu_parallel < few.cpu_parallel


class TestProfileOverheads:
    def test_cpu_overhead_multiplier_slows_parallel(self, sparse_trace):
        from dataclasses import replace

        from repro.frameworks.profiles import OURS

        trace, ws = sparse_trace
        heavy = replace(OURS, name="heavy", cpu_overhead_multiplier=20.0)
        base = FrameworkExecutor(OURS).timing(trace, ws)
        slow = FrameworkExecutor(heavy).timing(trace, ws)
        assert slow.cpu_parallel > base.cpu_parallel
        # sequential kernels pay no fork/join overhead: unaffected
        assert slow.cpu_sequential == pytest.approx(base.cpu_sequential)

    def test_gpu_launch_multiplier_slows_gpu(self, mlp_trace):
        from dataclasses import replace

        from repro.frameworks.profiles import OURS

        trace, ws = mlp_trace
        heavy = replace(OURS, name="chatty", gpu_launch_multiplier=50.0)
        base = FrameworkExecutor(OURS).timing(trace, ws)
        slow = FrameworkExecutor(heavy).timing(trace, ws)
        assert slow.gpu > base.gpu
        assert slow.cpu_parallel == pytest.approx(base.cpu_parallel)
