"""Tests for the distributed parameter-server backend.

With one worker and ``max_staleness=0`` the ordered TCP stream makes
the run *bit-identical* to serial incremental SGD (each push is
applied before the next pull is answered, and the pushed delta is the
IEEE-exact negation of the serial update); with several workers the
assertions are functional — convergence, counter accounting, staleness
bounds, fault recovery and teardown — because the interleaving is
genuinely asynchronous.
"""

import os

import numpy as np
import pytest

from repro.datasets import load
from repro.distributed import (
    PsSchedule,
    ShardServer,
    default_ps_nodes,
    default_ps_shards,
    shard_bounds,
    train_ps,
)
from repro.faults import FaultPlan, RecoveryPolicy
from repro.models import make_model
from repro.sgd import SGDConfig
from repro.telemetry import Telemetry, keys
from repro.utils.errors import ConfigurationError, WorkerError
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module", params=["covtype", "w8a"], ids=["dense", "sparse"])
def setup(request):
    ds = load(request.param, "tiny")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(7, "pstest"))
    return model, ds, init


def _config(**kw):
    defaults = dict(step_size=0.05, max_epochs=3, seed=99)
    defaults.update(kw)
    return SGDConfig(**defaults)


class TestScheduleValidation:
    def test_rejects_bad_nodes(self):
        with pytest.raises(ConfigurationError):
            PsSchedule(nodes=0)

    def test_rejects_bad_shards(self):
        with pytest.raises(ConfigurationError):
            PsSchedule(nodes=1, shards=0)

    def test_rejects_negative_staleness(self):
        with pytest.raises(ConfigurationError):
            PsSchedule(nodes=1, max_staleness=-1)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            PsSchedule(nodes=1, epoch_timeout=0.0)

    def test_rejects_unsupported_model(self, tiny_mlp_data):
        model = make_model("mlp", tiny_mlp_data)
        init = model.init_params(derive_rng(7, "pstest"))
        with pytest.raises(ConfigurationError):
            train_ps(
                model,
                tiny_mlp_data.X,
                tiny_mlp_data.y,
                init,
                _config(),
                PsSchedule(nodes=1),
            )

    def test_default_nodes_bounded_by_host(self):
        assert 1 <= default_ps_nodes() <= max(4, os.cpu_count() or 1)


class TestSharding:
    def test_bounds_cover_contiguously(self):
        bounds = shard_bounds(103, 8)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 103
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_params_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(3, 4)

    def test_default_shards_reasonable(self):
        assert default_ps_shards(4) == 1
        assert 1 <= default_ps_shards(54) <= 8
        assert default_ps_shards(10_000) == 8

    def test_server_snapshot_matches_init(self):
        init = np.linspace(-1, 1, 54)
        with ShardServer(init, 4) as server:
            assert np.array_equal(server.snapshot(), init)
            assert server.n_shards == 4
            assert server.describe()["shards"] == 4


class TestSingleNodeDeterminism:
    def test_matches_serial_sgd_bit_exactly(self, setup):
        """One lock-step node = the serial trajectory, bit for bit:
        the ordered stream applies each push before the next pull and
        the negated delta is IEEE-exact."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=1, max_staleness=0),
        )
        expected = init.copy()
        rng = derive_rng(99, "ps/1/0")
        part = np.arange(ds.X.shape[0], dtype=np.int64)
        for _ in range(res.epochs_run):
            order = part[rng.permutation(part.shape[0])]
            model.serial_sgd_epoch(ds.X, ds.y, order, expected, 0.05)
        assert np.array_equal(res.params, expected)

    def test_repeated_runs_identical(self, setup):
        model, ds, init = setup
        a = train_ps(model, ds.X, ds.y, init, _config(), PsSchedule(nodes=1))
        b = train_ps(model, ds.X, ds.y, init, _config(), PsSchedule(nodes=1))
        assert np.array_equal(a.params, b.params)
        assert a.curve.losses == b.curve.losses


class TestConcurrentIntegrity:
    def test_multi_node_learns(self, setup):
        model, ds, init = setup
        res = train_ps(
            model,
            ds.X,
            ds.y,
            init,
            _config(max_epochs=5),
            PsSchedule(nodes=3, epoch_timeout=60.0),
        )
        assert res.nodes == 3
        assert not res.diverged
        assert np.all(np.isfinite(res.params))
        assert res.curve.final_loss < res.curve.initial_loss

    def test_counter_accounting(self, setup):
        """Every example is pushed exactly once per epoch, every work
        item costs at most one pull round-trip (the fused protocol),
        and the totals land in the registry."""
        model, ds, init = setup
        tel = Telemetry()
        epochs = 3
        res = train_ps(
            model,
            ds.X,
            ds.y,
            init,
            _config(max_epochs=epochs),
            PsSchedule(nodes=2, epoch_timeout=60.0),
            tel,
        )
        n = ds.X.shape[0]
        assert res.counters[keys.UPDATES_APPLIED] == n * epochs
        assert res.counters[keys.PS_PUSHES] == n * epochs  # batch_size=1
        # Amortised wire: PULL_ALL opens the epoch, fused PUSH_PULL
        # covers the middle, the last item pushes without pulling —
        # exactly one round-trip per work item, never more.
        assert res.counters[keys.PS_PULL_ROUNDS] == n * epochs
        assert res.pull_rounds_per_update == 1.0
        # Fresh payloads + cached headers account for every shard of
        # every answered round.
        assert (
            res.counters[keys.PS_PULLS]
            + res.counters[keys.PS_SHARD_CACHE_HITS]
            == res.counters[keys.PS_PULL_ROUNDS] * res.shards
        )
        assert res.counters[keys.PS_BYTES_SENT] > 0
        assert res.counters[keys.PS_BYTES_RECEIVED] > 0
        counters = tel.counters()
        assert counters[keys.UPDATES_APPLIED] == n * epochs
        assert counters[keys.GRAD_EVALS] == n * epochs
        assert counters[keys.EPOCHS] == epochs
        assert counters[keys.LOSS_EVALS] == epochs + 1
        assert counters[keys.PS_PULLS] == res.counters[keys.PS_PULLS]
        gauges = tel.gauges()
        assert gauges[keys.PS_PULL_ROUNDS_PER_UPDATE] == 1.0

    def test_staleness_histogram_populated(self, setup):
        model, ds, init = setup
        res = train_ps(
            model,
            ds.X,
            ds.y,
            init,
            _config(),
            PsSchedule(nodes=2, epoch_timeout=60.0),
        )
        buckets = {
            k: v
            for k, v in res.counters.items()
            if k.startswith(keys.PS_STALENESS_BUCKET_PREFIX)
        }
        assert buckets
        # One observation per answered round-trip.
        assert sum(buckets.values()) == res.counters[keys.PS_PULL_ROUNDS]

    def test_unbounded_staleness_never_waits(self, setup):
        model, ds, init = setup
        res = train_ps(
            model,
            ds.X,
            ds.y,
            init,
            _config(),
            PsSchedule(nodes=2, max_staleness=None, epoch_timeout=60.0),
        )
        assert res.counters[keys.PS_PULL_WAITS] == 0

    def test_wall_clock_measured(self, setup):
        model, ds, init = setup
        tel = Telemetry()
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=60.0), tel,
        )
        assert res.wall_seconds_total > 0
        assert res.wall_seconds_per_epoch == pytest.approx(
            res.wall_seconds_total / res.epochs_run
        )
        gauges = tel.gauges()
        assert gauges[keys.WALL_SECONDS_PER_EPOCH] == res.wall_seconds_per_epoch
        assert gauges[keys.WALL_SECONDS_TOTAL] == res.wall_seconds_total


class TestFaultsAndRecovery:
    def test_node_kill_without_recovery_raises(self, setup):
        model, ds, init = setup
        plan = FaultPlan.parse(["node-kill@2"])
        with pytest.raises(WorkerError) as exc:
            train_ps(
                model,
                ds.X,
                ds.y,
                init,
                _config(),
                PsSchedule(nodes=2, epoch_timeout=30.0),
                fault_plan=plan,
            )
        assert exc.value.epoch == 2

    def test_node_kill_recovers_by_respawn(self, setup):
        model, ds, init = setup
        plan = FaultPlan.parse(["node-kill@2"])
        res = train_ps(
            model,
            ds.X,
            ds.y,
            init,
            _config(),
            PsSchedule(nodes=2, epoch_timeout=30.0),
            fault_plan=plan,
            recovery=RecoveryPolicy(max_restarts=2, mode="respawn"),
        )
        assert res.epochs_run == 3
        assert res.restarts == 1
        assert res.nodes_final == 2
        assert res.faults_injected >= 1
        assert res.counters[keys.PS_DEAD_WORKERS_REAPED] >= 1
        assert res.counters[keys.PS_RECONNECTS] >= 1
        assert res.recovery[0]["action"] == "respawn"
        assert res.recovery[0]["cause"]["exitcode"] == 23
        assert not res.diverged

    def test_node_kill_recovers_by_repartition(self, setup):
        model, ds, init = setup
        plan = FaultPlan.parse(["node-kill@2:w1"])
        res = train_ps(
            model,
            ds.X,
            ds.y,
            init,
            _config(),
            PsSchedule(nodes=3, epoch_timeout=30.0),
            fault_plan=plan,
            recovery=RecoveryPolicy(max_restarts=2, mode="repartition"),
        )
        assert res.epochs_run == 3
        assert res.repartitions == 1
        assert res.nodes_final == 2
        assert res.degraded_epochs >= 1
        # The rebuilt 2-node pool still covers every example.
        assert res.counters[keys.UPDATES_APPLIED] >= ds.X.shape[0]
        assert not res.diverged

    def test_node_stall_times_out_then_respawns(self, setup):
        model, ds, init = setup
        plan = FaultPlan.parse(["node-stall@2:w0"])
        res = train_ps(
            model,
            ds.X,
            ds.y,
            init,
            _config(),
            PsSchedule(nodes=2, epoch_timeout=1.0),
            fault_plan=plan,
            recovery=RecoveryPolicy(max_restarts=2),
        )
        assert res.epochs_run == 3
        assert res.restarts == 1  # a stall leaves no corpse: full respawn
        assert res.recovery[0]["cause"]["worker_id"] is None
        assert not res.diverged

    def test_budget_exhaustion_raises(self, setup):
        model, ds, init = setup
        plan = FaultPlan.parse(["node-kill@1", "node-kill@2"])
        with pytest.raises(WorkerError):
            train_ps(
                model,
                ds.X,
                ds.y,
                init,
                _config(),
                PsSchedule(nodes=2, epoch_timeout=30.0),
                fault_plan=plan,
                recovery=RecoveryPolicy(max_restarts=1, mode="respawn"),
            )


class TestFacade:
    def test_train_backend_ps(self):
        from repro.sgd import train

        result = train(
            "lr",
            "w8a",
            scale="tiny",
            max_epochs=3,
            backend="ps",
            nodes=2,
            max_staleness=8,
            epoch_timeout=60.0,
            early_stop_tolerance=None,
        )
        assert result.backend == "ps"
        assert result.measured["nodes"] == 2
        assert result.measured["max_staleness"] == 8
        assert result.measured["workers"] == 2  # CLI-facing alias
        assert result.time_per_iter == result.measured["wall_seconds_per_epoch"]
        assert keys.PS_PULLS in result.measured["counters"]
        assert result.params is not None

    def test_ps_flags_rejected_on_other_backends(self):
        from repro.sgd import train

        with pytest.raises(ConfigurationError, match="ps backend"):
            train("lr", "w8a", scale="tiny", nodes=2)
        with pytest.raises(ConfigurationError, match="ps backend"):
            train("lr", "w8a", scale="tiny", backend="shm", max_staleness=1)

    def test_shm_flags_rejected_on_ps(self):
        from repro.sgd import train

        with pytest.raises(ConfigurationError, match="shm backend"):
            train("lr", "w8a", scale="tiny", backend="ps", threads=2)

    def test_ps_rejects_synchronous(self):
        from repro.sgd import train

        with pytest.raises(ConfigurationError):
            train("lr", "w8a", scale="tiny", backend="ps", strategy="synchronous")


class TestAllDatasetsConverge:
    def test_five_datasets_match_shm_tolerance(self):
        """Acceptance: 4 ps nodes train every LIBSVM task to within the
        shm backend's loss neighbourhood (same updates, different
        transport — the curves should be statistically equivalent)."""
        from repro.parallel import ShmSchedule, train_shm

        cfg = _config()
        for name in ("covtype", "w8a", "real-sim", "rcv1", "news"):
            ds = load(name, "tiny")
            model = make_model("lr", ds)
            init = model.init_params(derive_rng(7, "pstest"))
            ps = train_ps(
                model, ds.X, ds.y, init, cfg,
                PsSchedule(nodes=4, epoch_timeout=60.0),
            )
            shm = train_shm(
                model, ds.X, ds.y, init, cfg, ShmSchedule(workers=4)
            )
            assert not ps.diverged, name
            assert ps.curve.final_loss < ps.curve.initial_loss, name
            gain = shm.curve.initial_loss - shm.curve.final_loss
            assert abs(ps.curve.final_loss - shm.curve.final_loss) <= max(
                0.25 * gain, 5e-3
            ), name
