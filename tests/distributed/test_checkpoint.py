"""Tests for the shard server's atomic, versioned checkpoint files."""

import os
import struct

import numpy as np
import pytest

from repro.distributed.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    CheckpointState,
    checkpoint_path,
    load_latest,
    read_checkpoint,
    write_checkpoint,
)
from repro.utils.errors import ConfigurationError


def _write(directory, seq, *, n=16, epoch=3, boundary=False, scale=1.0):
    params = np.linspace(-1, 1, n) * scale
    return write_checkpoint(
        directory,
        seq,
        params=params,
        versions=[seq * 10, seq * 10 + 1],
        released_epoch=epoch,
        clocks={0: 100 * seq, 3: 7},
        boundary=boundary,
    )


class TestPolicyValidation:
    def test_rejects_empty_dir(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(dir="")

    def test_rejects_bad_item_trigger(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(dir="/tmp/x", every_items=0)

    def test_rejects_bad_time_trigger(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(dir="/tmp/x", every_seconds=0.0)

    def test_triggerless_policy_is_valid(self):
        # Only the parent's epoch-boundary flushes persist.
        CheckpointPolicy(dir="/tmp/x")


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = _write(str(tmp_path), 4, epoch=9, boundary=True)
        state = read_checkpoint(path)
        assert isinstance(state, CheckpointState)
        assert np.array_equal(state.params, np.linspace(-1, 1, 16))
        assert state.versions == [40, 41]
        assert state.released_epoch == 9
        assert state.clocks == {0: 400, 3: 7}
        assert state.boundary is True
        assert state.seq == 4
        assert state.path == path

    def test_sequence_names_sort(self, tmp_path):
        assert checkpoint_path(str(tmp_path), 7).endswith("ckpt-00000007.ckpt")
        a = checkpoint_path(str(tmp_path), 9)
        b = checkpoint_path(str(tmp_path), 10)
        assert a < b  # zero-padding keeps lexical == numeric order

    def test_no_tmp_orphans_after_clean_write(self, tmp_path):
        _write(str(tmp_path), 1)
        _write(str(tmp_path), 2)
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_creates_directory(self, tmp_path):
        nested = os.path.join(str(tmp_path), "a", "b")
        path = _write(nested, 1)
        assert os.path.exists(path)


class TestValidation:
    def test_truncated_rejected(self, tmp_path):
        path = _write(str(tmp_path), 1)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-5])
        with pytest.raises(CheckpointError, match="bytes|truncated"):
            read_checkpoint(path)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = _write(str(tmp_path), 1)
        blob = bytearray(open(path, "rb").read())
        blob[-12] ^= 0xFF  # inside the params payload
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="payload checksum"):
            read_checkpoint(path)

    def test_corrupt_header_rejected(self, tmp_path):
        path = _write(str(tmp_path), 1)
        blob = bytearray(open(path, "rb").read())
        blob[10] ^= 0x01  # inside n_params — size check or CRC catches
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = _write(str(tmp_path), 1)
        blob = bytearray(open(path, "rb").read())
        blob[:8] = b"NOTCKPT0"
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(os.path.join(str(tmp_path), "nope.ckpt"))


class TestLoadLatest:
    def test_empty_or_missing_dir_returns_none(self, tmp_path):
        assert load_latest(str(tmp_path)) is None
        assert load_latest(os.path.join(str(tmp_path), "missing")) is None

    def test_newest_valid_wins(self, tmp_path):
        _write(str(tmp_path), 1, epoch=1)
        _write(str(tmp_path), 2, epoch=2)
        _write(str(tmp_path), 3, epoch=3)
        state = load_latest(str(tmp_path))
        assert state.seq == 3
        assert state.released_epoch == 3

    def test_corrupt_newest_falls_back(self, tmp_path):
        """A torn newest file degrades to its predecessor, never to
        an error: failover prefers an older consistent cut over none."""
        _write(str(tmp_path), 1, epoch=1)
        path = _write(str(tmp_path), 2, epoch=2)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0x55
        open(path, "wb").write(bytes(blob))
        state = load_latest(str(tmp_path))
        assert state.seq == 1

    def test_tmp_orphans_ignored(self, tmp_path):
        """A writer SIGKILLed mid-write leaves only a .tmp sibling —
        the restore path must never consider it."""
        _write(str(tmp_path), 1)
        open(os.path.join(str(tmp_path), "ckpt-zzz.tmp"), "wb").write(
            b"half-written garbage"
        )
        state = load_latest(str(tmp_path))
        assert state.seq == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        path = _write(str(tmp_path), 1)
        open(path, "wb").write(struct.pack("!8s", b"PSCKPT01"))
        assert load_latest(str(tmp_path)) is None
