"""Tests for the parameter-server wire protocol (framing layer)."""

import socket
import struct

import numpy as np
import pytest

from repro.distributed import protocol as wire


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrameRoundTrip:
    def test_header_and_payload_survive(self, pair):
        a, b = pair
        payload = b"\x00\x01\x02" * 100
        sent = wire.send_frame(
            a, wire.MSG_PUSH, ident=42, clock=12345678901234, payload=payload
        )
        frame = wire.recv_frame(b)
        assert frame.msg_type == wire.MSG_PUSH
        assert frame.ident == 42
        assert frame.clock == 12345678901234
        assert frame.payload == payload
        assert frame.nbytes == sent

    def test_empty_payload(self, pair):
        a, b = pair
        wire.send_frame(a, wire.MSG_BYE)
        frame = wire.recv_frame(b)
        assert frame.msg_type == wire.MSG_BYE
        assert frame.payload == b""

    def test_back_to_back_frames_keep_boundaries(self, pair):
        a, b = pair
        wire.send_frame(a, wire.MSG_PULL, ident=1, clock=10)
        wire.send_frame(a, wire.MSG_PULL, ident=2, clock=11)
        first = wire.recv_frame(b)
        second = wire.recv_frame(b)
        assert (first.ident, first.clock) == (1, 10)
        assert (second.ident, second.clock) == (2, 11)

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert wire.recv_frame(b) is None


class TestFrameValidation:
    def test_bad_magic_rejected(self, pair):
        a, b = pair
        a.sendall(b"\x00" * 16)
        with pytest.raises(wire.WireProtocolError, match="magic"):
            wire.recv_frame(b)

    def test_unknown_type_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("!BBHIQ", wire.MAGIC, 99, 0, 0, 0))
        with pytest.raises(wire.WireProtocolError, match="unknown message type"):
            wire.recv_frame(b)

    def test_oversized_payload_rejected(self, pair):
        a, b = pair
        a.sendall(
            struct.pack(
                "!BBHIQ", wire.MAGIC, wire.MSG_PUSH, 0, wire.MAX_FRAME_BYTES + 1, 0
            )
        )
        with pytest.raises(wire.WireProtocolError, match="cap"):
            wire.recv_frame(b)

    def test_eof_mid_frame_is_an_error_not_a_partial_parse(self, pair):
        """The failure mode the serving path's readline cap mishandled:
        a truncated message must raise, never decode partially."""
        a, b = pair
        a.sendall(struct.pack("!BBHIQ", wire.MAGIC, wire.MSG_PUSH, 0, 100, 0))
        a.sendall(b"x" * 10)
        a.close()
        with pytest.raises(wire.WireProtocolError, match="closed"):
            wire.recv_frame(b)


class TestTypedPayloads:
    def test_hello_ack_round_trip(self):
        raw = wire.pack_hello_ack(12345, 8, 16)
        assert wire.unpack_hello_ack(raw) == (12345, 8, 16)

    def test_hello_ack_unbounded_staleness(self):
        raw = wire.pack_hello_ack(10, 1, None)
        assert wire.unpack_hello_ack(raw) == (10, 1, None)

    def test_sparse_push_round_trip(self):
        idx = np.array([3, 7, 11], dtype=np.int64)
        val = np.array([0.5, -1.25, 3.0])
        out_idx, out_val = wire.unpack_push(wire.pack_push(idx, val))
        assert np.array_equal(out_idx, idx)
        assert np.array_equal(out_val, val)

    def test_dense_push_round_trip(self):
        val = np.linspace(-1, 1, 17)
        out_idx, out_val = wire.unpack_push(wire.pack_push(None, val))
        assert out_idx is None
        assert np.array_equal(out_val, val)

    def test_empty_sparse_push(self):
        out_idx, out_val = wire.unpack_push(
            wire.pack_push(np.empty(0, np.int64), np.empty(0))
        )
        assert out_idx.size == 0
        assert out_val.size == 0

    def test_malformed_push_rejected(self):
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"")
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"\x02junk")
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"\x00" + struct.pack("!I", 3) + b"short")
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"\x01" + b"x" * 9)  # not float64-aligned
