"""Tests for the parameter-server wire protocol (framing layer)."""

import socket
import struct
import zlib

import numpy as np
import pytest

from repro.distributed import protocol as wire


def _raw_header(msg_type: int, payload_len: int = 0) -> bytes:
    """Hand-craft a checksummed 20-byte header (payload sent apart)."""
    fields = struct.pack("!BBHIQ", wire.MAGIC, msg_type, 0, payload_len, 0)
    return fields + struct.pack("!I", zlib.crc32(fields))


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrameRoundTrip:
    def test_header_and_payload_survive(self, pair):
        a, b = pair
        payload = b"\x00\x01\x02" * 100
        sent = wire.send_frame(
            a, wire.MSG_PUSH, ident=42, clock=12345678901234, payload=payload
        )
        frame = wire.recv_frame(b)
        assert frame.msg_type == wire.MSG_PUSH
        assert frame.ident == 42
        assert frame.clock == 12345678901234
        assert frame.payload == payload
        assert frame.nbytes == sent

    def test_empty_payload(self, pair):
        a, b = pair
        wire.send_frame(a, wire.MSG_BYE)
        frame = wire.recv_frame(b)
        assert frame.msg_type == wire.MSG_BYE
        assert frame.payload == b""

    def test_back_to_back_frames_keep_boundaries(self, pair):
        a, b = pair
        wire.send_frame(a, wire.MSG_PULL, ident=1, clock=10)
        wire.send_frame(a, wire.MSG_PULL, ident=2, clock=11)
        first = wire.recv_frame(b)
        second = wire.recv_frame(b)
        assert (first.ident, first.clock) == (1, 10)
        assert (second.ident, second.clock) == (2, 11)

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert wire.recv_frame(b) is None


class TestFrameValidation:
    def test_header_is_twenty_bytes(self):
        assert wire.HEADER_BYTES == 20
        assert len(wire.pack_frame(wire.MSG_BYE)) == wire.HEADER_BYTES

    def test_bad_magic_rejected(self, pair):
        a, b = pair
        a.sendall(b"\x00" * wire.HEADER_BYTES)
        with pytest.raises(wire.WireProtocolError, match="magic"):
            wire.recv_frame(b)

    def test_unknown_type_rejected(self, pair):
        a, b = pair
        a.sendall(_raw_header(99))
        with pytest.raises(wire.WireProtocolError, match="unknown message type"):
            wire.recv_frame(b)

    def test_oversized_payload_rejected(self, pair):
        a, b = pair
        a.sendall(_raw_header(wire.MSG_PUSH, wire.MAX_FRAME_BYTES + 1))
        with pytest.raises(wire.WireProtocolError, match="cap"):
            wire.recv_frame(b)

    def test_eof_mid_frame_is_an_error_not_a_partial_parse(self, pair):
        """The failure mode the serving path's readline cap mishandled:
        a truncated message must raise, never decode partially."""
        a, b = pair
        a.sendall(_raw_header(wire.MSG_PUSH, 100))
        a.sendall(b"x" * 10)
        a.close()
        with pytest.raises(wire.WireProtocolError, match="closed"):
            wire.recv_frame(b)

    def test_corrupt_payload_byte_rejected(self, pair):
        """The lossy-wire guarantee: a flipped payload bit fails the
        CRC and raises, so a corrupted push can never be applied."""
        a, b = pair
        raw = bytearray(
            wire.pack_frame(wire.MSG_PUSH, ident=3, clock=9, payload=b"\x01" * 40)
        )
        raw[wire.HEADER_BYTES + 17] ^= 0xFF
        a.sendall(bytes(raw))
        with pytest.raises(wire.WireProtocolError, match="checksum"):
            wire.recv_frame(b)

    def test_corrupt_header_clock_rejected(self, pair):
        a, b = pair
        raw = bytearray(wire.pack_frame(wire.MSG_EPOCH_DONE, clock=7))
        raw[9] ^= 0x40  # inside the clock field
        a.sendall(bytes(raw))
        with pytest.raises(wire.WireProtocolError, match="checksum"):
            wire.recv_frame(b)

    def test_corrupt_gathered_frame_rejected(self, pair):
        """The incremental CRC of the sendmsg path guards the payload
        exactly like the contiguous one."""
        a, b = pair
        parts = [np.linspace(0, 1, 8).tobytes(), b"\x05" * 12]
        raw = bytearray(
            wire.pack_frame(wire.MSG_SHARDS, payload=b"".join(parts))
        )
        raw[-1] ^= 0x01
        a.sendall(bytes(raw))
        with pytest.raises(wire.WireProtocolError, match="checksum"):
            wire.recv_frame(b)


class TestTypedPayloads:
    def test_hello_ack_round_trip(self):
        raw = wire.pack_hello_ack(12345, 8, 16)
        assert wire.unpack_hello_ack(raw) == (12345, 8, 16, 0)

    def test_hello_ack_unbounded_staleness(self):
        raw = wire.pack_hello_ack(10, 1, None)
        assert wire.unpack_hello_ack(raw) == (10, 1, None, 0)

    def test_hello_ack_carries_resume_clock(self):
        """A mid-run re-registration resumes from the last work-item
        clock whose push the server actually applied."""
        raw = wire.pack_hello_ack(10, 2, 4, resume_clock=987654321)
        assert wire.unpack_hello_ack(raw) == (10, 2, 4, 987654321)

    def test_sparse_push_round_trip(self):
        idx = np.array([3, 7, 11], dtype=np.int64)
        val = np.array([0.5, -1.25, 3.0])
        out_idx, out_val = wire.unpack_push(wire.pack_push(idx, val))
        assert np.array_equal(out_idx, idx)
        assert np.array_equal(out_val, val)

    def test_dense_push_round_trip(self):
        val = np.linspace(-1, 1, 17)
        out_idx, out_val = wire.unpack_push(wire.pack_push(None, val))
        assert out_idx is None
        assert np.array_equal(out_val, val)

    def test_empty_sparse_push(self):
        out_idx, out_val = wire.unpack_push(
            wire.pack_push(np.empty(0, np.int64), np.empty(0))
        )
        assert out_idx.size == 0
        assert out_val.size == 0

    def test_malformed_push_rejected(self):
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"")
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"\x02junk")
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"\x00" + struct.pack("!I", 3) + b"short")
        with pytest.raises(wire.WireProtocolError):
            wire.unpack_push(b"\x01" + b"x" * 9)  # not float64-aligned

    def test_empty_push_is_one_byte(self):
        """The dense empty-delta fix: a coef-free item ships a marker,
        not an n_params zero vector."""
        raw = wire.pack_push_empty()
        assert raw == b"\x02"
        idx, val = wire.unpack_push(raw)
        assert idx.size == 0 and val.size == 0


class TestVersionedPayloads:
    def test_version_vector_round_trip(self):
        versions = [0, 7, wire.VERSION_NEVER, 123456789]
        assert wire.unpack_versions(wire.pack_versions(versions)) == versions

    def test_version_vector_validates_length(self):
        raw = wire.pack_versions([1, 2, 3])
        with pytest.raises(wire.WireProtocolError, match="does not match"):
            wire.unpack_versions(raw + b"x")
        with pytest.raises(wire.WireProtocolError, match="truncated"):
            wire.unpack_versions(b"\x00")

    def test_never_sentinel_cannot_collide(self):
        """Server versions start at 0 and only increment, so the fresh
        worker sentinel never matches and first pulls ship payloads."""
        assert wire.VERSION_NEVER == 2**64 - 1

    def test_shards_round_trip_mixed_cached_and_fresh(self):
        fresh_a = np.linspace(0, 1, 6).tobytes()
        fresh_b = np.linspace(-2, 2, 5).tobytes()
        entries = [(4, fresh_a), (9, None), (2, fresh_b)]
        payload = b"".join(wire.pack_shard_entries(entries))
        sizes = [len(fresh_a), 8 * 7, len(fresh_b)]  # cached size unused
        out = wire.unpack_shards(payload, sizes)
        assert out == entries

    def test_cached_shard_costs_nine_bytes(self):
        only_header = b"".join(wire.pack_shard_entries([(5, None)]))
        full = b"".join(wire.pack_shard_entries([(5, b"\x00" * 800)]))
        assert len(only_header) == 2 + 9  # count head + cached entry
        assert len(full) == 2 + 9 + 800

    def test_shards_validation(self):
        fresh = np.zeros(4).tobytes()
        payload = b"".join(wire.pack_shard_entries([(1, fresh)]))
        with pytest.raises(wire.WireProtocolError, match="against"):
            wire.unpack_shards(payload, [len(fresh), len(fresh)])
        with pytest.raises(wire.WireProtocolError, match="truncated"):
            wire.unpack_shards(payload, [len(fresh) + 8])
        with pytest.raises(wire.WireProtocolError, match="trailing"):
            wire.unpack_shards(payload + b"x", [len(fresh)])
        bad_flag = payload[:2] + b"\x07" + payload[3:]
        with pytest.raises(wire.WireProtocolError, match="cache flag"):
            wire.unpack_shards(bad_flag, [len(fresh)])
        with pytest.raises(wire.WireProtocolError, match="inside a shard header"):
            wire.unpack_shards(payload[:4], [len(fresh)])

    def test_push_pull_round_trip(self):
        idx = np.array([1, 5], dtype=np.int64)
        val = np.array([0.25, -0.5])
        push = wire.pack_push(idx, val)
        seen = [3, wire.VERSION_NEVER, 0]
        out_push, out_seen = wire.unpack_push_pull(
            wire.pack_push_pull(push, seen)
        )
        assert out_push == push
        assert out_seen == seen
        out_idx, out_val = wire.unpack_push(out_push)
        assert np.array_equal(out_idx, idx)
        assert np.array_equal(out_val, val)

    def test_push_pull_with_empty_push(self):
        raw = wire.pack_push_pull(wire.pack_push_empty(), [1, 2])
        push, seen = wire.unpack_push_pull(raw)
        assert push == b"\x02"
        assert seen == [1, 2]

    def test_push_pull_validation(self):
        with pytest.raises(wire.WireProtocolError, match="truncated"):
            wire.unpack_push_pull(b"\x00")
        raw = wire.pack_push_pull(b"\x02", [1])
        with pytest.raises(wire.WireProtocolError, match="truncated"):
            wire.unpack_push_pull(raw[:5])  # push length says 1, body empty


class TestScatterGatherSend:
    def test_parts_arrive_as_one_frame(self, pair):
        a, b = pair
        entries = [(1, np.arange(4.0).tobytes()), (2, None), (3, b"\x11" * 16)]
        parts = wire.pack_shard_entries(entries)
        sent = wire.send_frame_parts(a, wire.MSG_SHARDS, parts, clock=77)
        frame = wire.recv_frame(b)
        assert frame.msg_type == wire.MSG_SHARDS
        assert frame.clock == 77
        assert frame.nbytes == sent
        assert wire.unpack_shards(frame.payload, [32, 0, 16]) == entries

    def test_matches_contiguous_send(self, pair):
        """sendmsg gather framing is byte-identical to a single send."""
        a, b = pair
        parts = [b"abc", b"", b"defg", b"\x00" * 9]
        wire.send_frame_parts(a, wire.MSG_SHARDS, parts, ident=3, clock=1)
        wire.send_frame(
            a, wire.MSG_SHARDS, ident=3, clock=1, payload=b"".join(parts)
        )
        first = wire.recv_frame(b)
        second = wire.recv_frame(b)
        assert first.payload == second.payload
        assert first.nbytes == second.nbytes
        assert (first.ident, first.clock) == (second.ident, second.clock)
