"""Regression tests for the amortised parameter-server wire.

The batched protocol's contract is arithmetic, not statistical: one
work item costs exactly one pull round-trip (PULL_ALL opens the epoch,
fused PUSH_PULL covers the middle, the last item pushes alone), every
answered round accounts for every shard as either a fresh payload or a
cached header, and the server's byte counter decomposes exactly into
frame arithmetic.  These tests pin that contract so a protocol change
that quietly re-inflates the wire fails loudly — the measured
counterpart of the BENCH gate's >= 3x round-trip reduction.
"""

import socket
import time

import numpy as np
import pytest

from repro.datasets import load
from repro.distributed import PsSchedule, ShardServer, train_ps
from repro.distributed import protocol as wire
from repro.models import make_model
from repro.sgd import SGDConfig
from repro.telemetry import keys
from repro.utils.rng import derive_rng

#: Frame-arithmetic constants (see protocol.py): 20-byte checksummed
#: header, 22-byte HELLO_ACK payload (n_params u64, n_shards u16,
#: max_staleness i32, resume_clock u64), 2-byte SHARDS count head,
#: 9-byte per-shard entry.
_HEADER = wire.HEADER_BYTES
_HELLO_ACK = _HEADER + 22
_EPOCH_ACK = _HEADER
_SHARDS_HEAD = 2
_SHARD_ENTRY = 9


@pytest.fixture(scope="module", params=["covtype", "w8a"], ids=["dense", "sparse"])
def setup(request):
    ds = load(request.param, "tiny")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(7, "wiretest"))
    return model, ds, init


def _config(**kw):
    defaults = dict(step_size=0.05, max_epochs=2, seed=99)
    defaults.update(kw)
    return SGDConfig(**defaults)


class TestSingleNodeEconomics:
    """Exact per-update round-trip and byte counts, one node."""

    @pytest.fixture(scope="class")
    def run(self, setup):
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(), PsSchedule(nodes=1)
        )
        return ds, res

    def test_one_round_trip_per_item(self, run):
        ds, res = run
        n, epochs = ds.X.shape[0], res.epochs_run
        assert res.counters[keys.PS_PULL_ROUNDS] == n * epochs
        assert res.counters[keys.UPDATES_APPLIED] == n * epochs
        assert res.pull_rounds_per_update == 1.0

    def test_every_shard_of_every_round_accounted(self, run):
        _, res = run
        assert (
            res.counters[keys.PS_PULLS] + res.counters[keys.PS_SHARD_CACHE_HITS]
            == res.counters[keys.PS_PULL_ROUNDS] * res.shards
        )

    def test_bytes_sent_decompose_exactly(self, run):
        """ps.bytes_sent is frame arithmetic, nothing hidden: one
        HELLO_ACK, one EPOCH_ACK per barrier, and per round a SHARDS
        frame whose payload is the full model minus the cached bytes."""
        ds, res = run
        rounds = res.counters[keys.PS_PULL_ROUNDS]
        n_params = ds.n_features
        expected = (
            _HELLO_ACK
            + _EPOCH_ACK * (res.epochs_run + 1)  # registration + epochs
            + rounds * (_HEADER + _SHARDS_HEAD + _SHARD_ENTRY * res.shards)
            + 8 * n_params * rounds
            - res.counters[keys.PS_BYTES_SAVED]
        )
        assert res.counters[keys.PS_BYTES_SENT] == expected

    def test_cached_bytes_never_reship(self, run):
        """bytes_saved is whole shards' worth of float64 payloads."""
        ds, res = run
        hits = res.counters[keys.PS_SHARD_CACHE_HITS]
        saved = res.counters[keys.PS_BYTES_SAVED]
        lo_size = 8 * (ds.n_features // res.shards)
        hi_size = 8 * (ds.n_features // res.shards + 1)
        assert lo_size * hits <= saved <= hi_size * hits


class TestSerialEquivalence:
    def test_fused_protocol_stays_bit_exact(self, setup):
        """One lock-step node under PULL_ALL + fused PUSH_PULL still
        reproduces serial SGD bit for bit: the push of item k is
        applied before the pull for item k+1 is answered, on the same
        ordered stream, fusion or not."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=1, max_staleness=0),
        )
        expected = init.copy()
        rng = derive_rng(99, "ps/1/0")
        part = np.arange(ds.X.shape[0], dtype=np.int64)
        for _ in range(res.epochs_run):
            order = part[rng.permutation(part.shape[0])]
            model.serial_sgd_epoch(ds.X, ds.y, order, expected, 0.05)
        assert np.array_equal(res.params, expected)


class TestMultiNodeCache:
    def test_sparse_runs_hit_the_cache(self):
        """Sparse pushes bump few shards, so most shards of most rounds
        answer as cached headers — the protocol's whole point."""
        ds = load("w8a", "tiny")
        model = make_model("lr", ds)
        init = model.init_params(derive_rng(7, "wiretest"))
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=60.0),
        )
        assert res.counters[keys.PS_SHARD_CACHE_HITS] > 0
        assert res.counters[keys.PS_BYTES_SAVED] > 0
        assert res.pull_rounds_per_update == 1.0


def _dial(server: ShardServer) -> tuple[socket.socket, int, int]:
    sock = socket.create_connection((server.host, server.port))
    wire.send_frame(sock, wire.MSG_HELLO, ident=0)
    ack = wire.recv_frame(sock)
    n_params, n_shards, _, _ = wire.unpack_hello_ack(ack.payload)
    return sock, n_params, n_shards


def _pull_all(sock, seen, sizes):
    wire.send_frame(
        sock, wire.MSG_PULL_ALL, payload=wire.pack_versions(list(seen))
    )
    frame = wire.recv_frame(sock)
    assert frame.msg_type == wire.MSG_SHARDS
    return wire.unpack_shards(frame.payload, sizes)


def _settled(server: ShardServer, expect: dict[str, float]) -> None:
    """Assert counter values, allowing the handler thread to catch up.

    The server sends each reply *before* bumping its counters, so a
    client that just received the frame can observe the pre-update
    value for a moment."""
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        if all(server.counters[k] == v for k, v in expect.items()):
            return
        time.sleep(0.005)
    assert {k: server.counters[k] for k in expect} == expect


class TestVersionSemantics:
    """Direct-socket checks of the server's version/cache contract."""

    @pytest.fixture()
    def server(self):
        init = np.linspace(-1.0, 1.0, 24)
        with ShardServer(init, 3) as srv:
            yield srv

    def test_first_pull_always_ships_payloads(self, server):
        sock, n_params, n_shards = _dial(server)
        sizes = [8 * n_params // n_shards] * n_shards
        entries = _pull_all(sock, [wire.VERSION_NEVER] * n_shards, sizes)
        assert all(payload is not None for _, payload in entries)
        _settled(server, {keys.PS_SHARD_CACHE_HITS: 0, keys.PS_PULLS: n_shards})
        sock.close()

    def test_unchanged_shards_answer_cached(self, server):
        sock, n_params, n_shards = _dial(server)
        sizes = [8 * n_params // n_shards] * n_shards
        entries = _pull_all(sock, [wire.VERSION_NEVER] * n_shards, sizes)
        seen = [version for version, _ in entries]
        entries = _pull_all(sock, seen, sizes)
        assert all(payload is None for _, payload in entries)
        _settled(
            server,
            {
                keys.PS_SHARD_CACHE_HITS: n_shards,
                keys.PS_BYTES_SAVED: 8 * n_params,
            },
        )
        sock.close()

    def test_empty_push_advances_clock_without_bumping_versions(self, server):
        """The dense empty-delta fix end to end: a 1-byte empty push
        counts as a work item but leaves every version — and therefore
        every worker cache — untouched."""
        sock, n_params, n_shards = _dial(server)
        sizes = [8 * n_params // n_shards] * n_shards
        seen = [v for v, _ in _pull_all(sock, [wire.VERSION_NEVER] * n_shards, sizes)]
        wire.send_frame(
            sock, wire.MSG_PUSH, ident=1, clock=1,
            payload=wire.pack_push_empty(),
        )
        entries = _pull_all(sock, seen, sizes)
        assert all(payload is None for _, payload in entries)
        _settled(server, {keys.PS_PUSHES: 1, keys.UPDATES_APPLIED: 1})
        sock.close()

    def test_sparse_push_bumps_only_touched_shards(self, server):
        sock, n_params, n_shards = _dial(server)
        sizes = [8 * n_params // n_shards] * n_shards
        seen = [v for v, _ in _pull_all(sock, [wire.VERSION_NEVER] * n_shards, sizes)]
        # Indices 0 and 1 live in shard 0 of the 24-param/3-shard layout.
        idx = np.array([0, 1], dtype=np.int64)
        val = np.array([0.5, -0.5])
        wire.send_frame(
            sock, wire.MSG_PUSH, ident=1, clock=1,
            payload=wire.pack_push(idx, val),
        )
        entries = _pull_all(sock, seen, sizes)
        assert entries[0][1] is not None  # touched: fresh payload
        assert entries[1][1] is None and entries[2][1] is None
        _settled(server, {keys.PS_SHARD_CACHE_HITS: n_shards - 1})
        sock.close()

    def test_out_of_band_rewrite_invalidates_caches(self, server):
        """write_params (the NaN scrub) bumps every version, so a
        matching stale version can never serve pre-scrub bytes."""
        sock, n_params, n_shards = _dial(server)
        sizes = [8 * n_params // n_shards] * n_shards
        seen = [v for v, _ in _pull_all(sock, [wire.VERSION_NEVER] * n_shards, sizes)]
        scrubbed = np.zeros(n_params)
        server.write_params(scrubbed)
        entries = _pull_all(sock, seen, sizes)
        assert all(payload is not None for _, payload in entries)
        rebuilt = np.concatenate(
            [np.frombuffer(p, dtype=np.float64) for _, p in entries]
        )
        assert np.array_equal(rebuilt, scrubbed)
        sock.close()

    def test_mismatched_version_vector_rejected(self, server):
        sock, _, n_shards = _dial(server)
        wire.send_frame(
            sock,
            wire.MSG_PULL_ALL,
            payload=wire.pack_versions([0] * (n_shards + 1)),
        )
        # The handler drops the connection on the protocol error.
        assert wire.recv_frame(sock) is None
        sock.close()
