"""Tests for the lossy wire: the fault-injecting socket wrapper, the
plan resolvers that feed it, and the end-to-end healing guarantees."""

import socket

import numpy as np
import pytest

from repro.datasets import load
from repro.distributed import FaultyWire, PsSchedule, train_ps
from repro.distributed import protocol as wire
from repro.distributed.lossy import WIRE_FAULT_IDENTS
from repro.faults import FaultPlan
from repro.faults.plan import DEFAULT_DELAY_SECONDS, STALL_TIMEOUT_FACTOR
from repro.models import make_model
from repro.sgd import SGDConfig
from repro.telemetry import keys
from repro.utils.errors import ConfigurationError
from repro.utils.rng import derive_rng


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def _wrap(sock) -> FaultyWire:
    return FaultyWire(sock, derive_rng(0, "wire-fault-test"))


class TestFaultyWire:
    def test_unknown_kind_rejected(self, pair):
        a, _ = pair
        with pytest.raises(ConfigurationError, match="unknown wire fault"):
            _wrap(a).arm("frame-eaten")

    def test_unarmed_is_pure_passthrough(self, pair):
        a, b = pair
        wrapped = _wrap(a)
        wire.send_frame(wrapped, wire.MSG_PUSH, ident=1, clock=5,
                        payload=b"\x01" * 32)
        frame = wire.recv_frame(b)
        assert frame.payload == b"\x01" * 32

    def test_conn_drop_fires_before_the_frame_leaves(self, pair):
        a, b = pair
        wrapped = _wrap(a)
        wrapped.arm("conn-drop")
        with pytest.raises(ConnectionError):
            wire.send_frame(wrapped, wire.MSG_PUSH, payload=b"\x01" * 8)
        # Nothing escaped: the peer sees a clean EOF, not a torn frame.
        assert wire.recv_frame(b) is None

    def test_arming_is_one_shot(self, pair):
        a, b = pair
        wrapped = _wrap(a)
        wrapped.arm("frame-delay", 0.0)
        wire.send_frame(wrapped, wire.MSG_PULL, clock=1)
        wire.send_frame(wrapped, wire.MSG_PULL, clock=2)
        assert wire.recv_frame(b).clock == 1
        assert wire.recv_frame(b).clock == 2

    def test_frame_delay_delivers_intact(self, pair):
        a, b = pair
        wrapped = _wrap(a)
        wrapped.arm("frame-delay", 0.01)
        wire.send_frame(wrapped, wire.MSG_PUSH, ident=9, payload=b"\x07" * 24)
        frame = wire.recv_frame(b)
        assert frame.ident == 9
        assert frame.payload == b"\x07" * 24

    def test_frame_corrupt_fails_the_receiver_crc(self, pair):
        """The tentpole guarantee at the socket level: a flipped
        payload byte is *detected*, never decoded as garbage floats."""
        a, b = pair
        wrapped = _wrap(a)
        wrapped.arm("frame-corrupt")
        wire.send_frame(
            wrapped, wire.MSG_PUSH, payload=np.linspace(0, 1, 16).tobytes()
        )
        with pytest.raises(wire.WireProtocolError, match="checksum"):
            wire.recv_frame(b)

    def test_corruption_targets_the_payload_not_the_header(self):
        """Header fields survive so the receiver gets far enough to
        run the checksum — seeded position is always past the header."""
        captured = []

        class _Sink:
            def sendall(self, buf):
                captured.append(bytes(buf))

        original = wire.pack_frame(wire.MSG_PUSH, payload=b"\x00" * 64)
        for trial in range(16):
            wrapped = FaultyWire(_Sink(), derive_rng(trial, "corrupt-pos"))
            wrapped.arm("frame-corrupt")
            wrapped.sendall(original)
        for sent in captured:
            assert sent[: wire.HEADER_BYTES] == original[: wire.HEADER_BYTES]
            assert sent != original

    def test_attach_spans_a_reconnect(self, pair):
        a, b = pair
        wrapped = _wrap(a)
        wrapped.arm("conn-drop")
        with pytest.raises(ConnectionError):
            wire.send_frame(wrapped, wire.MSG_PUSH)
        a2, b2 = socket.socketpair()
        try:
            wrapped.attach(a2)
            wire.send_frame(wrapped, wire.MSG_PULL, clock=3)
            assert wire.recv_frame(b2).clock == 3
        finally:
            a2.close()
            b2.close()

    def test_fault_idents_extend_the_node_kinds(self):
        # 1=kill and 2=stall are taken by the node-fault FAULT frames.
        assert set(WIRE_FAULT_IDENTS) == {
            "conn-drop", "frame-delay", "frame-corrupt"
        }
        assert min(WIRE_FAULT_IDENTS.values()) >= 3


class TestPlanResolution:
    def test_resolve_wire_pins_workers_and_defaults(self):
        plan = FaultPlan.parse(
            ["conn-drop@1:w0", "frame-delay@2:w1", "frame-corrupt@3:w0",
             "node-kill@1:w1"],
            seed=5,
        )
        assigned = plan.resolve_wire(2, run_seed=5, epoch_timeout=10.0)
        assert sorted(assigned) == [0, 1]
        kinds_w0 = [s["kind"] for s in assigned[0]]
        assert kinds_w0 == ["conn-drop", "frame-corrupt"]
        # node kinds resolve through resolve_nodes, never here.
        assert all(
            s["kind"] != "node-kill" for specs in assigned.values()
            for s in specs
        )
        delay = assigned[1][0]
        assert delay["seconds"] == DEFAULT_DELAY_SECONDS
        assert assigned[0][0]["seconds"] == 0.0

    def test_resolve_wire_unpinned_worker_is_seeded(self):
        plan = FaultPlan.parse(["conn-drop@1"], seed=5)
        first = plan.resolve_wire(4, run_seed=0, epoch_timeout=10.0)
        second = plan.resolve_wire(4, run_seed=0, epoch_timeout=10.0)
        assert first == second  # same stream, same target

    def test_resolve_wire_rejects_out_of_range_worker(self):
        plan = FaultPlan.parse(["conn-drop@1:w5"], seed=5)
        with pytest.raises(ConfigurationError, match="only"):
            plan.resolve_wire(2, run_seed=5, epoch_timeout=10.0)

    def test_resolve_server_defaults(self):
        plan = FaultPlan.parse(
            ["server-kill@2", "server-stall@3", "conn-drop@1:w0"], seed=5
        )
        specs = plan.resolve_server(epoch_timeout=4.0)
        assert [s["kind"] for s in specs] == ["server-kill", "server-stall"]
        assert specs[0]["seconds"] == 0.0
        assert specs[1]["seconds"] == 4.0 * STALL_TIMEOUT_FACTOR


@pytest.fixture(scope="module")
def setup():
    ds = load("covtype", "tiny")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(7, "pstest"))
    return model, ds, init


def _config(**kw):
    defaults = dict(step_size=0.05, max_epochs=3, seed=99)
    defaults.update(kw)
    return SGDConfig(**defaults)


class TestLossyWireEndToEnd:
    def test_conn_drop_heals_without_recovery_budget(self, setup):
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=30.0),
            fault_plan=FaultPlan.parse(["conn-drop@2:w0"]),
        )
        assert res.epochs_run == 3
        assert not res.diverged
        assert res.counters[keys.PS_RECONNECTS_MIDRUN] >= 1.0
        assert res.counters[keys.FAULT_INJECTED] >= 1.0
        assert res.recovery == []  # healed worker-side, no budget spent

    def test_frame_corrupt_rejected_then_healed(self, setup):
        """Acceptance criterion: the corrupted push is CRC-rejected
        (never applied) and the worker reconnects and replays."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=30.0),
            fault_plan=FaultPlan.parse(["frame-corrupt@2:w1"]),
        )
        assert res.epochs_run == 3
        assert not res.diverged
        assert res.counters[keys.PS_FRAMES_REJECTED] >= 1.0
        assert res.counters[keys.PS_RECONNECTS_MIDRUN] >= 1.0
        assert res.recovery == []

    def test_frame_delay_absorbed_silently(self, setup):
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=30.0),
            fault_plan=FaultPlan.parse(["frame-delay@2:w0"]),
        )
        assert res.epochs_run == 3
        assert not res.diverged
        assert res.counters[keys.PS_RECONNECTS_MIDRUN] == 0.0
        assert res.counters.get(keys.PS_FRAMES_REJECTED, 0.0) == 0.0
        assert res.recovery == []

    def test_single_node_drop_stays_serial_exact(self, setup):
        """Healing is exactly-once both ways: even one lock-step node
        with a dropped connection mid-epoch replays to the bit-exact
        serial trajectory."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=1, max_staleness=0, batch_size=1,
                       epoch_timeout=60.0),
            fault_plan=FaultPlan.parse(["conn-drop@2:w0"]),
        )
        assert res.counters[keys.PS_RECONNECTS_MIDRUN] >= 1.0
        expected = init.copy()
        rng = derive_rng(99, "ps/1/0")
        part = np.arange(ds.X.shape[0], dtype=np.int64)
        for _ in range(res.epochs_run):
            order = part[rng.permutation(part.shape[0])]
            model.serial_sgd_epoch(ds.X, ds.y, order, expected, 0.05)
        assert np.array_equal(res.params, expected)
