"""Tests for server checkpointing, crash-restart failover, and the
recovery trajectory the manifest records."""

import logging
import multiprocessing as mp
import os
import threading
import time

import numpy as np
import pytest

from repro.datasets import load
from repro.distributed import (
    PsSchedule,
    RemoteServerHandle,
    ShardServer,
    train_ps,
)
from repro.distributed.checkpoint import CheckpointPolicy, load_latest
from repro.faults import FaultPlan, RecoveryPolicy
from repro.models import make_model
from repro.sgd import SGDConfig
from repro.telemetry import keys
from repro.utils.errors import ConfigurationError, ServerDiedError
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def setup():
    ds = load("covtype", "tiny")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(7, "pstest"))
    return model, ds, init


def _config(**kw):
    defaults = dict(step_size=0.05, max_epochs=3, seed=99)
    defaults.update(kw)
    return SGDConfig(**defaults)


def _ctx():
    return mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )


class TestScheduleValidation:
    def test_checkpoint_triggers_need_dir(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            PsSchedule(nodes=1, checkpoint_every=10)
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            PsSchedule(nodes=1, checkpoint_seconds=1.0)

    def test_server_faults_need_checkpointing(self, setup):
        model, ds, init = setup
        with pytest.raises(ConfigurationError, match="checkpoint"):
            train_ps(
                model, ds.X, ds.y, init, _config(),
                PsSchedule(nodes=1, epoch_timeout=30.0),
                fault_plan=FaultPlan.parse(["server-kill@2"]),
                recovery=RecoveryPolicy(max_restarts=2),
            )

    def test_server_faults_need_standalone_server(self):
        with pytest.raises(ConfigurationError, match="standalone"):
            ShardServer(
                np.zeros(8), 2,
                server_faults=[{"kind": "server-kill", "epoch": 1,
                               "seconds": 0.0}],
                pushes_per_epoch=4,
            )


class TestServerCheckpointing:
    def test_boundary_checkpoint_and_restore(self, tmp_path):
        init = np.linspace(-2, 2, 32)
        policy = CheckpointPolicy(dir=str(tmp_path))
        with ShardServer(init, 4, checkpoint=policy) as server:
            server.release_epoch(5)
            server.write_params(init * 3)
            path = server.checkpoint_now(boundary=True)
            assert path is not None and os.path.exists(path)
            assert server.counters[keys.PS_CHECKPOINTS_WRITTEN] == 1.0
        state = load_latest(str(tmp_path))
        assert state.boundary is True
        assert state.released_epoch == 5
        assert np.array_equal(state.params, init * 3)

        with ShardServer(init, 4, checkpoint=policy, restore=state) as fresh:
            assert np.array_equal(fresh.snapshot(), init * 3)
            assert fresh.counters[keys.PS_CHECKPOINTS_RESTORED] == 1.0

    def test_restore_rejects_wrong_shape(self, tmp_path):
        init = np.zeros(16)
        policy = CheckpointPolicy(dir=str(tmp_path))
        with ShardServer(init, 2, checkpoint=policy) as server:
            server.checkpoint_now(boundary=True)
        state = load_latest(str(tmp_path))
        with pytest.raises(ConfigurationError):
            ShardServer(np.zeros(8), 2, restore=state)

    def test_checkpoint_without_policy_is_a_noop(self):
        with ShardServer(np.zeros(8), 2) as server:
            assert server.checkpoint_now(boundary=True) is None


class TestRemoteServerHandle:
    def test_lifecycle_and_control_plane(self, tmp_path):
        init = np.linspace(0, 1, 24)
        handle = RemoteServerHandle(
            _ctx(),
            init_params=init,
            shards=3,
            max_staleness=None,
            expected_workers=1,
            checkpoint=CheckpointPolicy(dir=str(tmp_path)),
            probe_timeout=5.0,
        )
        try:
            assert handle.port > 0
            assert np.array_equal(handle.snapshot(), init)
            handle.write_params(init * 2)
            assert np.array_equal(handle.snapshot(), init * 2)
            handle.release_epoch(1)
            assert handle.checkpoint_boundary() is True
            assert handle.counters().get(keys.PS_CHECKPOINTS_WRITTEN) == 1.0
            assert handle.describe()["server_process"] is True
        finally:
            handle.close()
        # Clean shutdown: the child exited on its own terms, counters
        # survived the close, no temp orphans.
        assert handle.counters().get(keys.PS_CHECKPOINTS_WRITTEN) == 1.0
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_respawn_restores_from_checkpoint(self, tmp_path):
        init = np.linspace(0, 1, 24)
        handle = RemoteServerHandle(
            _ctx(),
            init_params=init,
            shards=3,
            max_staleness=None,
            expected_workers=1,
            checkpoint=CheckpointPolicy(dir=str(tmp_path)),
            probe_timeout=2.0,
        )
        try:
            handle.write_params(init + 7.0)
            handle.release_epoch(2)
            assert handle.checkpoint_boundary() is True
            old_port = handle.port
            handle._proc.kill()
            with pytest.raises(ServerDiedError):
                for _ in range(100):
                    handle.snapshot()
                    time.sleep(0.05)
            new_port = handle.respawn()
            assert new_port != 0
            assert new_port == handle.port or old_port != new_port
            # The restored generation holds the checkpointed cut.
            assert np.array_equal(handle.snapshot(), init + 7.0)
            assert (
                handle.counters().get(keys.PS_CHECKPOINTS_RESTORED, 0.0) >= 1.0
            )
        finally:
            handle.close()


class TestServerFailover:
    def test_server_kill_fails_over_and_finishes(self, setup, tmp_path):
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(max_epochs=4),
            PsSchedule(nodes=2, epoch_timeout=30.0,
                       checkpoint_dir=str(tmp_path), checkpoint_every=50),
            fault_plan=FaultPlan.parse(["server-kill@2"]),
            recovery=RecoveryPolicy(max_restarts=2),
        )
        assert res.epochs_run == 4
        assert not res.diverged
        assert res.server_failovers == 1
        assert res.time_to_repair_seconds is not None
        assert res.time_to_repair_seconds > 0
        assert res.counters[keys.PS_SERVER_FAILOVERS] == 1.0
        assert res.counters[keys.PS_CHECKPOINTS_RESTORED] >= 1.0
        assert res.counters[keys.PS_RECONNECTS_MIDRUN] >= 1.0
        assert res.faults_injected >= 1
        failovers = [
            e for e in res.recovery if e["action"] == "server_failover"
        ]
        assert len(failovers) == 1
        assert failovers[0]["epoch"] == 2
        assert failovers[0]["time_to_repair_seconds"] > 0
        # Atomic writes: a SIGKILLed writer leaves no half-written
        # final file, at most ignorable .tmp orphans — and a clean
        # parent run unlinks even those on the next write.
        assert [n for n in os.listdir(tmp_path) if n.endswith(".ckpt")]

    def test_server_kill_without_recovery_raises(self, setup, tmp_path):
        model, ds, init = setup
        with pytest.raises(ServerDiedError):
            train_ps(
                model, ds.X, ds.y, init, _config(),
                PsSchedule(nodes=2, epoch_timeout=30.0,
                           checkpoint_dir=str(tmp_path)),
                fault_plan=FaultPlan.parse(["server-kill@2"]),
            )

    def test_server_stall_detected_by_probe_timeout(self, setup, tmp_path):
        """A wedged server answers nothing: the probe times out, the
        parent declares it dead, and failover proceeds exactly as for
        a crash."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=6.0,
                       checkpoint_dir=str(tmp_path)),
            fault_plan=FaultPlan.parse(["server-stall@2"]),
            recovery=RecoveryPolicy(max_restarts=2),
        )
        assert res.epochs_run == 3
        assert res.server_failovers == 1
        assert not res.diverged

    def test_failover_replay_is_serial_exact(self, setup, tmp_path):
        """The tentpole guarantee: one lock-step node, killed server,
        checkpoint restore, replayed epoch — still bit-identical to
        the serial trajectory."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=1, max_staleness=0, batch_size=1,
                       epoch_timeout=60.0, checkpoint_dir=str(tmp_path)),
            fault_plan=FaultPlan.parse(["server-kill@2"]),
            recovery=RecoveryPolicy(max_restarts=2),
        )
        assert res.server_failovers == 1
        expected = init.copy()
        rng = derive_rng(99, "ps/1/0")
        part = np.arange(ds.X.shape[0], dtype=np.int64)
        for _ in range(res.epochs_run):
            order = part[rng.permutation(part.shape[0])]
            model.serial_sgd_epoch(ds.X, ds.y, order, expected, 0.05)
        assert np.array_equal(res.params, expected)

    def test_server_process_without_faults(self, setup, tmp_path):
        """The supervised topology on a healthy run: same result
        surface, failover machinery armed but idle."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=30.0, server_process=True,
                       checkpoint_dir=str(tmp_path)),
        )
        assert res.epochs_run == 3
        assert res.server_failovers == 0
        assert res.time_to_repair_seconds is None
        assert not res.diverged


class TestHandlerLeakAccounting:
    def test_wedged_handler_counted_and_logged(self, caplog):
        """close() joins every handler with a grace period; one that
        does not make it is abandoned loudly, not silently."""
        server = ShardServer(np.zeros(8), 2)
        wedged = threading.Thread(target=time.sleep, args=(8.0,), daemon=True)
        wedged.start()
        server._threads.append(wedged)
        with caplog.at_level(logging.WARNING, "repro.distributed.server"):
            server.close()
        assert server.counters[keys.PS_HANDLER_THREADS_LEAKED] == 1.0
        assert any(
            "abandoned 1 handler" in r.getMessage() for r in caplog.records
        )

    def test_clean_close_leaks_nothing(self):
        with ShardServer(np.zeros(8), 2) as server:
            pass
        assert server.counters[keys.PS_HANDLER_THREADS_LEAKED] == 0.0


class TestRecoveryTrajectory:
    def test_combined_kill_and_stall_drill(self, setup):
        """The manifest's ``recovery`` list is a trajectory, in order:
        a node-kill at epoch 1 then a node-stall at epoch 2 must
        produce exactly two entries, in epoch order, with the counters
        agreeing with the log."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=2, epoch_timeout=2.0),
            fault_plan=FaultPlan.parse(["node-kill@1:w0", "node-stall@2:w1"]),
            recovery=RecoveryPolicy(max_restarts=3, mode="respawn"),
        )
        assert res.epochs_run == 3
        assert not res.diverged
        actions = [(e["action"], e["epoch"]) for e in res.recovery]
        assert actions == [("respawn", 1), ("respawn", 2)]
        assert res.restarts == 2
        assert res.repartitions == 0
        assert res.nodes_final == 2
        # The kill leaves a corpse with the fault exit code; the stall
        # leaves none (barrier timeout, worker_id unknown).
        assert res.recovery[0]["cause"]["exitcode"] == 23
        assert res.recovery[1]["cause"]["worker_id"] is None
        assert res.counters[keys.FAULT_WORKER_RESTARTS] == 2.0
        assert res.counters[keys.FAULT_REPARTITIONS] == 0.0
        assert res.faults_injected >= 2

    def test_kill_then_repartition_then_stall_respawn(self, setup):
        """Mixed modes: a repartition (kill) followed by a stall
        respawn rebuilds at the *degraded* width and the trajectory
        records both widths."""
        model, ds, init = setup
        res = train_ps(
            model, ds.X, ds.y, init, _config(),
            PsSchedule(nodes=3, epoch_timeout=2.0),
            fault_plan=FaultPlan.parse(["node-kill@1:w2", "node-stall@2:w0"]),
            recovery=RecoveryPolicy(max_restarts=3, mode="repartition"),
        )
        assert res.epochs_run == 3
        actions = [(e["action"], e["epoch"], e["nodes"]) for e in res.recovery]
        assert actions == [("repartition", 1, 2), ("respawn", 2, 2)]
        assert res.restarts == 1
        assert res.repartitions == 1
        assert res.nodes_final == 2
        assert res.degraded_epochs >= 1
