"""Tests for the cache-line conflict statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.coherence import (
    LineStats,
    dense_line_frequencies,
    line_frequencies_from_csr,
    zipf_line_frequencies,
)
from repro.linalg import CSRMatrix


class TestLineStats:
    def test_dense_everything_conflicts(self):
        stats = dense_line_frequencies(54)
        assert stats.n_lines == 7  # ceil(54 / 8)
        assert stats.conflict_fraction(56) == pytest.approx(1.0)
        assert stats.expected_writers(56) == pytest.approx(56.0)
        assert stats.max_frequency == 1.0

    def test_single_thread_no_conflicts(self):
        stats = dense_line_frequencies(54)
        assert stats.conflict_fraction(1) == 0.0

    def test_empty(self):
        stats = LineStats(np.empty(0))
        assert stats.conflict_fraction(56) == 0.0
        assert stats.expected_writers(56) == 1.0
        assert stats.max_frequency == 0.0

    def test_rejects_frequency_above_one(self):
        with pytest.raises(ValueError):
            LineStats(np.array([1.5]))

    @given(
        st.lists(st.floats(0.001, 1.0), min_size=1, max_size=30),
        st.integers(2, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_conflict_fraction_bounds_and_monotonicity(self, freqs, t):
        stats = LineStats(np.asarray(freqs))
        f_t = stats.conflict_fraction(t)
        assert 0.0 <= f_t <= 1.0
        assert f_t <= stats.conflict_fraction(t + 10) + 1e-12

    @given(st.lists(st.floats(0.001, 1.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_writers_monotone_in_threads(self, freqs):
        stats = LineStats(np.asarray(freqs))
        assert stats.expected_writers(2) <= stats.expected_writers(100)
        assert stats.expected_writers(1) == pytest.approx(1.0)


class TestFromCsr:
    def test_counts_row_touches(self):
        # line 0 = cols 0-7, line 1 = cols 8-15
        rows = [
            (np.array([0, 1]), np.ones(2)),  # touches line 0 once
            (np.array([8]), np.ones(1)),  # line 1
            (np.array([0, 8]), np.ones(2)),  # both lines
        ]
        X = CSRMatrix.from_rows(rows, n_cols=16)
        stats = line_frequencies_from_csr(X)
        assert sorted(stats.frequencies.tolist()) == [pytest.approx(2 / 3)] * 2

    def test_empty_matrix(self):
        X = CSRMatrix.from_rows([(np.array([], dtype=np.int64), np.array([]))], 8)
        assert line_frequencies_from_csr(X).n_lines == 0


class TestZipf:
    def test_head_cap_bounds_feature_frequency(self):
        capped = zipf_line_frequencies(1000, 50.0, 1.1, head_freq_cap=0.05)
        # a line folds 8 features, each <= 0.05
        assert capped.max_frequency <= 1.0 - (1.0 - 0.05) ** 8 + 1e-9

    def test_uncapped_head_is_hotter(self):
        capped = zipf_line_frequencies(1000, 50.0, 1.1, head_freq_cap=0.05)
        raw = zipf_line_frequencies(1000, 50.0, 1.1)
        assert raw.max_frequency > capped.max_frequency

    def test_round_robin_beats_sorted_fold(self):
        """Round-robin assignment keeps the hottest line well below the
        worst case of folding adjacent head features into one line
        (1 - (1-cap)^8 = 0.83 here)."""
        stats = zipf_line_frequencies(800, 100.0, 1.0, head_freq_cap=0.2)
        assert stats.max_frequency < 0.6

    def test_paper_scale_dimensions(self):
        """Full news20 dimensionality stays tractable."""
        stats = zipf_line_frequencies(1_355_191, 455.0, 1.2, head_freq_cap=0.05)
        assert stats.n_lines > 10_000
        assert 0.0 < stats.conflict_fraction(56) < 1.0

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            zipf_line_frequencies(0, 1.0, 1.0)
