"""Tests for the hardware specifications (the paper's Fig. 5)."""

import pytest

from repro.hardware import TESLA_K80, XEON_E5_2660V4_DUAL
from repro.utils.units import GiB, KiB, MiB


class TestXeonSpec:
    def test_figure5_numbers(self):
        s = XEON_E5_2660V4_DUAL
        assert s.sockets == 2
        assert s.cores_per_socket == 14
        assert s.max_threads == 56  # the paper's thread count
        assert s.l1_bytes_per_core == 32 * KiB
        assert s.l2_bytes_per_core == 256 * KiB
        assert s.l3_bytes_per_socket == 35 * MiB
        assert s.dram_bytes == 256 * GiB

    def test_effective_cores_monotone(self):
        s = XEON_E5_2660V4_DUAL
        values = [s.effective_cores(t) for t in (1, 14, 28, 42, 56)]
        assert values == sorted(values)
        assert values[0] == 1.0

    def test_smt_discount(self):
        s = XEON_E5_2660V4_DUAL
        assert s.effective_cores(28) == 28
        assert 28 < s.effective_cores(56) < 56

    def test_effective_cores_caps_at_max(self):
        s = XEON_E5_2660V4_DUAL
        assert s.effective_cores(1000) == s.effective_cores(56)

    def test_effective_cores_rejects_zero(self):
        with pytest.raises(ValueError):
            XEON_E5_2660V4_DUAL.effective_cores(0)

    def test_sockets_engaged(self):
        s = XEON_E5_2660V4_DUAL
        assert s.sockets_engaged(1) == 1
        assert s.sockets_engaged(14) == 1
        assert s.sockets_engaged(15) == 2
        assert s.sockets_engaged(56) == 2

    def test_core_flops(self):
        # 2.0 GHz x 16 DP flops/cycle
        assert XEON_E5_2660V4_DUAL.core_flops == pytest.approx(32e9)


class TestK80Spec:
    def test_figure5_numbers(self):
        g = TESLA_K80
        assert g.multiprocessors == 13
        assert g.cores_per_mp == 192
        assert g.total_cores == 2496  # the paper's headline core count
        assert g.warp_size == 32
        assert g.global_bytes == 12 * GiB
        assert g.l2_bytes == 1536 * KiB

    def test_concurrent_threads(self):
        g = TESLA_K80
        assert g.concurrent_threads == g.warps_in_flight * 32
        assert g.concurrent_threads > XEON_E5_2660V4_DUAL.max_threads * 10
