"""Tests for the AsyncWorkload descriptors."""

import numpy as np
import pytest

from repro.datasets import PAPER_PROFILES, load, load_mlp
from repro.hardware import AsyncWorkload, warp_divergence_factor
from repro.models import make_model


class TestWarpDivergence:
    def test_constant_rows_no_divergence(self):
        assert warp_divergence_factor(np.full(100, 54.0)) == 1.0

    def test_heavy_tail_diverges(self, rng):
        lengths = rng.lognormal(3.0, 1.5, size=2000)
        assert warp_divergence_factor(lengths) > 2.0

    def test_empty(self):
        assert warp_divergence_factor(np.array([])) == 1.0

    def test_deterministic(self, rng):
        lengths = rng.lognormal(3.0, 1.0, size=500)
        assert warp_divergence_factor(lengths) == warp_divergence_factor(lengths)


class TestForLinear:
    def test_full_scale_hogwild(self):
        ds = load("news", "tiny")
        model = make_model("lr", ds)
        w = AsyncWorkload.for_linear(ds, model)
        full = PAPER_PROFILES["news"]
        assert w.steps_per_epoch == full.n_examples  # paper scale, not tiny
        assert w.examples_per_step == 1
        assert not w.dense_update
        assert w.model_lines_per_step == pytest.approx(full.nnz_avg)

    def test_dense_dataset(self):
        ds = load("covtype", "tiny")
        w = AsyncWorkload.for_linear(ds, make_model("lr", ds))
        assert w.dense_update
        assert w.warp_divergence == 1.0
        assert w.line_stats.max_frequency == 1.0

    def test_sparse_divergence_exceeds_dense(self):
        news = load("news", "tiny")
        cov = load("covtype", "tiny")
        w_news = AsyncWorkload.for_linear(news, make_model("lr", news))
        w_cov = AsyncWorkload.for_linear(cov, make_model("lr", cov))
        assert w_news.warp_divergence > w_cov.warp_divergence


class TestForBatched:
    def test_hogbatch_shape(self):
        ds = load_mlp("w8a", "tiny")
        model = make_model("mlp", ds)
        w = AsyncWorkload.for_batched(ds, model, batch_size=512)
        full = PAPER_PROFILES["w8a"]
        assert w.examples_per_step == 512
        assert w.steps_per_epoch == -(-full.n_examples // 512)
        assert w.dense_update
        assert w.model_bytes == model.n_params * 8

    def test_rejects_bad_batch(self):
        ds = load_mlp("w8a", "tiny")
        with pytest.raises(ValueError):
            AsyncWorkload.for_batched(ds, make_model("mlp", ds), batch_size=0)

    def test_validation(self):
        ds = load("w8a", "tiny")
        w = AsyncWorkload.for_linear(ds, make_model("lr", ds))
        with pytest.raises(ValueError):
            AsyncWorkload(
                name="bad",
                steps_per_epoch=0,
                examples_per_step=1,
                flops_per_step=1.0,
                data_bytes_per_step=1.0,
                model_lines_per_step=1.0,
                model_bytes=8.0,
                line_stats=w.line_stats,
                warp_divergence=1.0,
                dense_update=False,
            )
