"""Tests for the GPU performance model."""

import pytest

from repro.datasets import load, load_mlp
from repro.hardware import AsyncWorkload, CpuModel, GpuModel
from repro.linalg.trace import OpKind, OpRecord, Trace
from repro.models import make_model
from repro.utils.units import MiB


def _op(kind=OpKind.GEMM, flops=1e9, bytes_=8 * MiB, tasks=100_000, result=1_000_000,
        irregular=False, dispersion=1.0):
    return OpRecord(
        name="op", kind=kind, flops=flops, bytes_read=bytes_, bytes_written=1e3,
        parallel_tasks=tasks, result_size=result, irregular=irregular,
        dispersion=dispersion,
    )


class TestSyncModel:
    def test_launch_overhead_floor(self):
        gpu = GpuModel()
        tiny = Trace([_op(flops=10.0, bytes_=80.0)])
        assert gpu.sync_epoch_time(tiny) >= gpu.spec.kernel_launch_overhead

    def test_gpu_beats_parallel_cpu_on_big_dense_kernels(self):
        """The synchronous headline: the GPU's bandwidth and FLOP
        advantage wins on large streaming kernels."""
        gpu, cpu = GpuModel(), CpuModel()
        tr = Trace([_op(flops=5e9, bytes_=2000 * MiB)])
        assert gpu.sync_epoch_time(tr) < cpu.sync_epoch_time(tr, 56, 2000 * MiB)

    def test_skinny_gemm_derated(self):
        gpu = GpuModel()
        fat = _op(result=1_000_000, tasks=1_000)  # 1000 cols
        skinny = _op(result=10_000, tasks=1_000)  # 10 cols, same flops
        assert gpu.op_time(skinny) > gpu.op_time(fat)

    def test_sparse_penalty_milder_than_cpu(self):
        """ViennaCL's GPU sparse kernels coalesce well; the CPU pays
        more for irregular access — that asymmetry is why the sync gap
        grows with sparsity (Table II)."""
        gpu, cpu = GpuModel(), CpuModel()
        assert gpu.irregular_penalty < cpu.irregular_penalty

    def test_breakdown_fields(self):
        gpu = GpuModel()
        br = gpu.sync_breakdown(Trace([_op(), _op()]))
        assert br.launch == pytest.approx(2 * gpu.spec.kernel_launch_overhead)
        assert br.total > 0


class TestAsyncModel:
    @pytest.fixture(scope="class")
    def dense_wl(self):
        ds = load("covtype", "tiny")
        return AsyncWorkload.for_linear(ds, make_model("lr", ds))

    @pytest.fixture(scope="class")
    def sparse_wl(self):
        ds = load("news", "tiny")
        return AsyncWorkload.for_linear(ds, make_model("lr", ds))

    def test_dense_gpu_fast_per_iteration(self, dense_wl):
        """covtype async: GPU iterates much faster than parallel CPU
        (Table III: ratio ~0.06) — it loses on epochs, not hardware."""
        gpu, cpu = GpuModel(), CpuModel()
        t_gpu = gpu.async_epoch_time(dense_wl)
        t_par = cpu.async_epoch_time(dense_wl, 56)
        assert t_gpu < 0.2 * t_par

    def test_sparse_gpu_slow_per_iteration(self, sparse_wl):
        """news async: divergence + uncoalesced gathers make the GPU
        *slower* per iteration than parallel CPU (Table III: ~7.5x)."""
        gpu, cpu = GpuModel(), CpuModel()
        t_gpu = gpu.async_epoch_time(sparse_wl)
        t_par = cpu.async_epoch_time(sparse_wl, 56)
        assert t_gpu > 2.0 * t_par

    def test_warp_shuffle_ablation(self, dense_wl):
        """Disabling the warp-shuffle optimisation must inflate the
        dense atomic floor (DESIGN.md ablation 3)."""
        with_shuffle = GpuModel(warp_shuffle=True).async_breakdown(dense_wl)
        without = GpuModel(warp_shuffle=False).async_breakdown(dense_wl)
        assert without.atomics > 5 * with_shuffle.atomics

    def test_hogbatch_launch_dominated(self):
        """MLP Hogbatch: many small kernels, one batch at a time — the
        GPU ends near-sequential (paper: ~2x over cpu-seq only)."""
        ds = load_mlp("w8a", "tiny")
        wl = AsyncWorkload.for_batched(ds, make_model("mlp", ds), 512)
        gpu, cpu = GpuModel(), CpuModel()
        t_gpu = gpu.async_epoch_time(wl)
        t_seq = cpu.async_epoch_time(wl, 1)
        t_par = cpu.async_epoch_time(wl, 56)
        assert t_par < t_gpu < t_seq  # cpu-par fastest, gpu between
