"""Tests for the cache-residency model."""

import pytest

from repro.hardware import XEON_E5_2660V4_DUAL, residency
from repro.hardware.cache import MemLevel
from repro.utils.units import KiB, MiB

SPEC = XEON_E5_2660V4_DUAL


class TestLevelSelection:
    def test_tiny_set_in_l1(self):
        assert residency(SPEC, 16 * KiB, 1).level is MemLevel.L1

    def test_aggregate_l1_grows_with_threads(self):
        ws = 20 * 32 * KiB  # fits 20+ cores' L1, not one
        assert residency(SPEC, ws, 1).level is not MemLevel.L1
        assert residency(SPEC, ws, 28).level is MemLevel.L1

    def test_w8a_aggregate_residency(self):
        """~9 MB CSR: beyond one core's private caches, inside the
        aggregate hierarchy with all threads — the super-linear regime."""
        ws = 9 * MiB
        seq = residency(SPEC, ws, 1)
        par = residency(SPEC, ws, 56)
        assert seq.level in (MemLevel.L3, MemLevel.DRAM)
        assert par.level in (MemLevel.L2, MemLevel.L3)
        assert par.bandwidth > 10 * seq.bandwidth

    def test_huge_set_in_dram(self):
        assert residency(SPEC, 10 * 1024 * MiB, 56).level is MemLevel.DRAM


class TestSequentialL3Thrash:
    def test_cold_scan_gets_fraction(self):
        """A 20 MB cold scan fits L3 for parallel but thrashes for a
        single thread (the paper's 'cannot be cached on a single
        core')."""
        ws = 20 * MiB
        assert residency(SPEC, ws, 1).level is MemLevel.DRAM
        assert residency(SPEC, ws, 56).level is MemLevel.L3

    def test_hot_set_keeps_l3(self):
        ws = 20 * MiB
        assert residency(SPEC, ws, 1, hot=True).level is MemLevel.L3


class TestBandwidth:
    def test_monotone_in_threads(self):
        ws = 100 * MiB
        bws = [residency(SPEC, ws, t).bandwidth for t in (1, 8, 28, 56)]
        assert bws == sorted(bws)

    def test_dram_capped_by_socket_channels(self):
        bw = residency(SPEC, 10 * 1024 * MiB, 56).bandwidth
        assert bw <= SPEC.sockets * SPEC.dram_bw_socket

    def test_latency_vs_stream_single_thread(self):
        ws = 10 * 1024 * MiB
        stream = residency(SPEC, ws, 1, streaming=True).bandwidth
        pointer_chase = residency(SPEC, ws, 1, streaming=False).bandwidth
        assert pointer_chase < stream

    def test_rejects_negative_ws(self):
        with pytest.raises(ValueError):
            residency(SPEC, -1.0, 1)
