"""Tests for the thread-scalability sweeps."""

import numpy as np
import pytest

from repro.datasets import load
from repro.hardware import AsyncWorkload, CpuModel
from repro.hardware.sweep import async_scaling, sync_scaling
from repro.linalg import recording
from repro.models import make_model
from repro.sgd.runner import full_scale_factor, working_set_bytes
from repro.utils import derive_rng


@pytest.fixture(scope="module")
def cpu():
    return CpuModel()


def _sync_inputs(name):
    ds = load(name, "small")
    model = make_model("lr", ds)
    w = model.init_params(derive_rng(0, "sweep"))
    with recording() as tr:
        model.full_grad(ds.X, ds.y, w)
    return tr.scaled(full_scale_factor(ds, "lr")), working_set_bytes(ds, model, "lr")


class TestSyncScaling:
    def test_speedup_monotone_for_sync_kernels(self, cpu):
        trace, ws = _sync_inputs("rcv1")
        curve = sync_scaling(cpu, trace, ws)
        speedups = [p.speedup for p in curve.points]
        assert speedups == sorted(speedups)
        assert curve.points[0].speedup == pytest.approx(1.0)

    def test_w8a_goes_superlinear(self, cpu):
        """The aggregate-cache regime shift appears as super-linear
        points in the sweep (the paper's Section IV-B)."""
        trace, ws = _sync_inputs("w8a")
        curve = sync_scaling(cpu, trace, ws)
        assert curve.superlinear

    def test_efficiency_definition(self, cpu):
        trace, ws = _sync_inputs("covtype")
        curve = sync_scaling(cpu, trace, ws)
        for p in curve.points:
            assert p.efficiency == pytest.approx(p.speedup / p.threads)

    def test_requires_baseline_first(self, cpu):
        trace, ws = _sync_inputs("covtype")
        with pytest.raises(ValueError, match="1 thread"):
            sync_scaling(cpu, trace, ws, threads=(2, 4))


class TestAsyncScaling:
    def test_dense_collapse(self, cpu):
        """covtype Hogwild: the sweep must show scaling collapsing below
        1.0 — the coherence floor."""
        ds = load("covtype", "small")
        w = AsyncWorkload.for_linear(ds, make_model("lr", ds))
        curve = async_scaling(cpu, w)
        assert curve.scaling_collapses

    def test_sparse_scales_then_saturates(self, cpu):
        ds = load("news", "small")
        w = AsyncWorkload.for_linear(ds, make_model("lr", ds))
        curve = async_scaling(cpu, w)
        assert not curve.scaling_collapses
        assert 2.0 < curve.peak_speedup < 56.0
        assert curve.monotone_through() >= 8

    def test_best_point_is_min_time(self, cpu):
        ds = load("real-sim", "small")
        w = AsyncWorkload.for_linear(ds, make_model("lr", ds))
        curve = async_scaling(cpu, w)
        assert curve.best.time == min(p.time for p in curve.points)
