"""Tests for the heterogeneous CPU+GPU execution model."""

import pytest

from repro.datasets import load, load_mlp
from repro.hardware.hetero import HeteroModel
from repro.linalg import recording
from repro.linalg.trace import OpKind, OpRecord
from repro.models import make_model
from repro.sgd.runner import full_scale_factor, working_set_bytes
from repro.utils import derive_rng
from repro.utils.units import MiB


def _op(flops=1e9, bytes_=100 * MiB, tasks=100_000):
    return OpRecord(
        name="k", kind=OpKind.GEMV, flops=flops, bytes_read=bytes_,
        bytes_written=1e3, parallel_tasks=tasks, result_size=tasks,
    )


def _trace_for(task, name):
    loader = load_mlp if task == "mlp" else load
    ds = loader(name, "small")
    model = make_model(task, ds)
    w = model.init_params(derive_rng(0, "hetero"))
    with recording() as tr:
        model.full_grad(ds.X, ds.y, w)
    return (
        tr.scaled(full_scale_factor(ds, task)),
        working_set_bytes(ds, model, task),
        model.n_params * 8,
    )


class TestSplitOp:
    def test_split_beats_both_devices(self):
        hetero = HeteroModel()
        split = hetero.split_op(_op(), 500 * MiB)
        assert split.time <= split.cpu_alone + 1e-15
        assert split.time <= split.gpu_alone + 1e-15

    def test_optimal_fraction_balances_devices(self):
        hetero = HeteroModel()
        split = hetero.split_op(_op(), 500 * MiB)
        if split.beneficial:
            cpu_part = split.cpu_fraction * split.cpu_alone
            gpu_part = (1 - split.cpu_fraction) * split.gpu_alone
            assert cpu_part == pytest.approx(gpu_part, rel=1e-9)

    def test_benefit_bounded_by_two(self):
        hetero = HeteroModel()
        split = hetero.split_op(_op(), 500 * MiB)
        assert split.time >= 0.5 * min(split.cpu_alone, split.gpu_alone) - 1e-12

    def test_serial_kernels_not_split(self):
        hetero = HeteroModel()
        op = OpRecord(
            name="dw", kind=OpKind.GEMM, flops=1e9, bytes_read=1e8,
            bytes_written=1e3, parallel_tasks=1, result_size=540,
        )
        split = hetero.split_op(op, 500 * MiB)
        assert split.cpu_fraction in (0.0, 1.0)
        assert split.time == pytest.approx(min(split.cpu_alone, split.gpu_alone))

    def test_tiny_kernels_stay_single_device(self):
        """Synchronisation overhead must kill the split for sub-overhead
        kernels."""
        hetero = HeteroModel()
        tiny = _op(flops=1e4, bytes_=1e4, tasks=100)
        split = hetero.split_op(tiny, 1 * MiB)
        assert split.cpu_fraction in (0.0, 1.0)


class TestEpochCosting:
    def test_merge_cost_scales_with_model(self):
        hetero = HeteroModel()
        assert hetero.merge_cost(16e6) == pytest.approx(2 * hetero.merge_cost(8e6))

    def test_hetero_never_slower_than_best_single_plus_merge(self):
        hetero = HeteroModel()
        trace, ws, mb = _trace_for("lr", "covtype")
        speedup = hetero.speedup_over_best_single(trace, ws, mb)
        assert speedup > 0.9  # merge cost can eat a little, never much

    def test_pairing_wins_where_devices_are_close(self):
        """The paper's Table II gaps (covtype LR par/gpu 1.24x) leave
        room for a real pairing win; per-kernel assignment+splitting
        also rescues the MLP (the CPU handles the kernels it is decent
        at while the GPU takes the serial-on-CPU weight gradients)."""
        hetero = HeteroModel()
        for task in ("lr", "mlp"):
            trace, ws, mb = _trace_for(task, "covtype")
            speedup = hetero.speedup_over_best_single(trace, ws, mb)
            assert 1.2 < speedup <= 2.0, (task, speedup)

    def test_speedup_bounded_by_two(self):
        hetero = HeteroModel()
        for task, name in (("lr", "covtype"), ("svm", "rcv1")):
            trace, ws, mb = _trace_for(task, name)
            assert hetero.speedup_over_best_single(trace, ws, mb) <= 2.0 + 1e-9
