"""Tests for the CPU performance model."""

import pytest

from repro.datasets import load
from repro.hardware import AsyncWorkload, CpuModel
from repro.linalg import FULLY_PARALLEL_POLICY
from repro.linalg.trace import OpKind, OpRecord, Trace
from repro.models import make_model
from repro.utils.units import MiB


def _gemm_op(flops=1e9, result=10_000, tasks=100_000):
    return OpRecord(
        name="g", kind=OpKind.GEMM, flops=flops, bytes_read=flops / 100,
        bytes_written=1e3, parallel_tasks=tasks, result_size=result,
    )


def _small_gemm_op(flops=1e9):
    """Below the ViennaCL threshold: result 540 like a dW product."""
    return OpRecord(
        name="dw", kind=OpKind.GEMM, flops=flops, bytes_read=flops / 100,
        bytes_written=1e3, parallel_tasks=54, result_size=540,
        parallelism_scales=False,
    )


class TestSyncModel:
    def test_parallel_faster_than_sequential(self):
        cpu = CpuModel()
        tr = Trace([_gemm_op()])
        t1 = cpu.sync_epoch_time(tr, 1, 100 * MiB)
        t56 = cpu.sync_epoch_time(tr, 56, 100 * MiB)
        assert t56 < t1

    def test_viennacl_threshold_blocks_small_gemm(self):
        cpu = CpuModel()
        tr = Trace([_small_gemm_op()])
        t1 = cpu.sync_epoch_time(tr, 1, 100 * MiB)
        t56 = cpu.sync_epoch_time(tr, 56, 100 * MiB)
        # near-identical: the kernel never parallelises
        assert t56 == pytest.approx(t1, rel=0.05)

    def test_fully_parallel_policy_unblocks(self):
        cpu = CpuModel(policy=FULLY_PARALLEL_POLICY)
        tr = Trace([_small_gemm_op()])
        t1 = cpu.sync_epoch_time(tr, 1, 100 * MiB)
        t56 = cpu.sync_epoch_time(tr, 56, 100 * MiB)
        assert t56 < 0.1 * t1

    def test_monotone_in_threads(self):
        cpu = CpuModel()
        tr = Trace([_gemm_op()])
        times = [cpu.sync_epoch_time(tr, t, 100 * MiB) for t in (1, 4, 16, 56)]
        assert times == sorted(times, reverse=True)

    def test_irregular_penalty_slows_spmv(self):
        cpu = CpuModel()
        base = dict(flops=1e6, bytes_read=64 * MiB, bytes_written=1e3, parallel_tasks=1000)
        regular = OpRecord(name="r", kind=OpKind.GEMV, **base)
        irregular = OpRecord(name="i", kind=OpKind.SPMV, irregular=True, **base)
        t_reg = cpu.sync_epoch_time(Trace([regular]), 56, 500 * MiB)
        t_irr = cpu.sync_epoch_time(Trace([irregular]), 56, 500 * MiB)
        assert t_irr > 1.5 * t_reg

    def test_breakdown_consistent(self):
        cpu = CpuModel()
        tr = Trace([_gemm_op(), _small_gemm_op()])
        br = cpu.sync_breakdown(tr, 56, 100 * MiB)
        assert br.total > 0
        assert br.total <= br.compute + br.memory + br.overhead + 1e-12

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            CpuModel().sync_epoch_time(Trace([]), 0, 1.0)


class TestSuperLinearSpeedup:
    def test_cache_residency_superlinear(self):
        """A memory-bound kernel whose working set fits the aggregate
        private caches but not one core's: parallel speedup must exceed
        the thread count (the paper's w8a/real-sim finding)."""
        cpu = CpuModel()
        ws = 6 * MiB  # > L1+L2+L3-share of one core, < aggregate L2
        op = OpRecord(
            name="scan", kind=OpKind.SPMV, flops=1e6, bytes_read=40 * MiB,
            bytes_written=1e3, parallel_tasks=100_000, result_size=100_000,
            irregular=True,
        )
        t1 = cpu.sync_epoch_time(Trace([op]), 1, ws)
        t56 = cpu.sync_epoch_time(Trace([op]), 56, ws)
        assert t1 / t56 > 56

    def test_dram_bound_sublinear(self):
        """Out-of-cache working sets saturate the channels: speedup
        stays below the thread count (the paper's rcv1 finding)."""
        cpu = CpuModel()
        ws = 1200 * MiB
        op = OpRecord(
            name="scan", kind=OpKind.SPMV, flops=1e6, bytes_read=1200 * MiB,
            bytes_written=1e3, parallel_tasks=700_000, result_size=700_000,
            irregular=True,
        )
        t1 = cpu.sync_epoch_time(Trace([op]), 1, ws)
        t56 = cpu.sync_epoch_time(Trace([op]), 56, ws)
        assert 5 < t1 / t56 < 56


class TestAsyncModel:
    @pytest.fixture(scope="class")
    def workloads(self):
        out = {}
        for name in ("covtype", "news", "w8a"):
            ds = load(name, "tiny")
            out[name] = AsyncWorkload.for_linear(ds, make_model("lr", ds))
        return out

    def test_dense_parallel_slower_than_sequential(self, workloads):
        """covtype: every update touches every model line -> the
        hot-line floor makes 56 threads slower than 1 (Table III)."""
        cpu = CpuModel()
        w = workloads["covtype"]
        assert cpu.async_epoch_time(w, 56) > cpu.async_epoch_time(w, 1)

    def test_sparse_parallel_faster(self, workloads):
        cpu = CpuModel()
        w = workloads["news"]
        t1, t56 = cpu.async_epoch_time(w, 1), cpu.async_epoch_time(w, 56)
        assert 2.0 < t1 / t56 < 20.0  # paper: ~6x best case

    def test_coherence_ablation_switch(self, workloads):
        """Without the coherence model, dense parallel Hogwild would
        (wrongly) look fast — the ablation the design doc calls out."""
        w = workloads["covtype"]
        with_coh = CpuModel().async_epoch_time(w, 56)
        without = CpuModel(model_coherence=False).async_epoch_time(w, 56)
        assert without < 0.25 * with_coh

    def test_sequential_unaffected_by_coherence(self, workloads):
        w = workloads["w8a"]
        a = CpuModel().async_epoch_time(w, 1)
        b = CpuModel(model_coherence=False).async_epoch_time(w, 1)
        assert a == pytest.approx(b)

    def test_breakdown_total_ge_parts(self, workloads):
        br = CpuModel().async_breakdown(workloads["news"], 56)
        assert br.total >= br.compute
        assert br.total >= br.memory
        assert br.coherence >= 0
