"""Hypothesis property tests for the hardware cost models.

The analytical models must satisfy basic physical sanity regardless of
parameters: non-negative times, monotonicity in work, monotone benefit
of threads for conflict-free work, and cost decompositions that never
exceed the whole.  These invariants guard the calibration constants —
a miscalibration that breaks physics is caught here even if the paper
comparisons still look plausible.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import AsyncWorkload, CpuModel, GpuModel
from repro.hardware.coherence import LineStats
from repro.linalg.trace import OpKind, OpRecord, Trace

KINDS = st.sampled_from(list(OpKind))


@st.composite
def op_records(draw):
    kind = draw(KINDS)
    flops = draw(st.floats(0.0, 1e12))
    br = draw(st.floats(0.0, 1e10))
    bw = draw(st.floats(0.0, 1e10))
    tasks = draw(st.integers(1, 10**7))
    result = draw(st.integers(0, 10**7))
    return OpRecord(
        name="p",
        kind=kind,
        flops=flops,
        bytes_read=br,
        bytes_written=bw,
        parallel_tasks=tasks,
        result_size=result,
        irregular=draw(st.booleans()),
        dispersion=draw(st.floats(1.0, 50.0)),
    )


@st.composite
def workloads(draw):
    n_lines = draw(st.integers(1, 40))
    freqs = draw(
        st.lists(st.floats(1e-4, 1.0), min_size=n_lines, max_size=n_lines)
    )
    return AsyncWorkload(
        name="prop",
        steps_per_epoch=draw(st.integers(1, 10**6)),
        examples_per_step=draw(st.sampled_from([1, 1, 1, 256])),
        flops_per_step=draw(st.floats(1.0, 1e7)),
        data_bytes_per_step=draw(st.floats(1.0, 1e6)),
        model_lines_per_step=draw(st.floats(1.0, 1e4)),
        model_bytes=draw(st.floats(8.0, 1e9)),
        line_stats=LineStats(np.asarray(freqs)),
        warp_divergence=draw(st.floats(1.0, 40.0)),
        dense_update=draw(st.booleans()),
    )


class TestCpuSyncProperties:
    @given(op_records(), st.integers(1, 56), st.floats(1.0, 1e12))
    @settings(max_examples=80, deadline=None)
    def test_time_positive_finite(self, op, threads, ws):
        t = CpuModel().op_time(op, threads, ws)
        assert t > 0 and np.isfinite(t)

    @given(op_records(), st.floats(1.0, 1e12))
    @settings(max_examples=60, deadline=None)
    def test_more_work_never_cheaper(self, op, ws):
        cpu = CpuModel()
        doubled = Trace([op, op])
        assert cpu.sync_epoch_time(doubled, 28, ws) >= cpu.sync_epoch_time(
            Trace([op]), 28, ws
        ) - 1e-15

    @given(op_records(), st.floats(1.0, 1e12))
    @settings(max_examples=60, deadline=None)
    def test_threads_never_hurt_sync(self, op, ws):
        """Synchronous kernels: more threads never slow an op (the
        policy may ignore them, but never adds cost beyond overhead)."""
        cpu = CpuModel()
        t1 = cpu.op_time(op, 1, ws)
        t56 = cpu.op_time(op, 56, ws)
        # allow the fork/join overhead delta
        assert t56 <= t1 + cpu.spec.parallel_overhead

    @given(op_records(), st.integers(1, 56), st.floats(1.0, 1e12))
    @settings(max_examples=60, deadline=None)
    def test_breakdown_bounds_total(self, op, threads, ws):
        cpu = CpuModel()
        br = cpu.sync_breakdown(Trace([op]), threads, ws)
        assert br.total <= br.compute + br.memory + br.overhead + 1e-12


class TestCpuAsyncProperties:
    @given(workloads(), st.integers(1, 56))
    @settings(max_examples=80, deadline=None)
    def test_time_positive_finite(self, w, threads):
        t = CpuModel().async_epoch_time(w, threads)
        assert t > 0 and np.isfinite(t)

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_coherence_never_negative(self, w):
        br = CpuModel().async_breakdown(w, 56)
        assert br.coherence >= -1e-12

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_disabling_coherence_never_slower(self, w):
        on = CpuModel().async_epoch_time(w, 56)
        off = CpuModel(model_coherence=False).async_epoch_time(w, 56)
        assert off <= on + 1e-15


class TestGpuProperties:
    @given(op_records())
    @settings(max_examples=80, deadline=None)
    def test_op_time_at_least_launch(self, op):
        gpu = GpuModel()
        assert gpu.op_time(op) >= gpu.spec.kernel_launch_overhead

    @given(workloads())
    @settings(max_examples=80, deadline=None)
    def test_async_time_positive_finite(self, w):
        t = GpuModel().async_epoch_time(w)
        assert t > 0 and np.isfinite(t)

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_warp_shuffle_never_hurts(self, w):
        with_shuffle = GpuModel(warp_shuffle=True).async_epoch_time(w)
        without = GpuModel(warp_shuffle=False).async_epoch_time(w)
        assert with_shuffle <= without + 1e-15

    @given(op_records(), st.floats(1.0, 8.0))
    @settings(max_examples=60, deadline=None)
    def test_irregular_penalty_monotone(self, op, penalty):
        mild = GpuModel(irregular_penalty=1.0).op_time(op)
        harsh = GpuModel(irregular_penalty=penalty).op_time(op)
        assert harsh >= mild - 1e-15
