"""Tests for the measured shared-memory Hogwild backend.

With one worker there are no races, so the run is asserted against
plain sequential incremental SGD; with several workers the assertions
are functional (buffer integrity, counter accounting, teardown) because
true Hogwild is racy by construction.
"""

import os
import time

import numpy as np
import pytest

from repro.datasets import load
from repro.models import make_model
from repro.parallel import ShmSchedule, default_shm_workers, train_shm
from repro.parallel import shm as shm_mod
from repro.sgd import SGDConfig
from repro.telemetry import Telemetry, keys
from repro.utils.errors import ConfigurationError, WorkerError
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module", params=["covtype", "w8a"], ids=["dense", "sparse"])
def setup(request):
    ds = load(request.param, "tiny")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(7, "shmtest"))
    return model, ds, init


def _config(**kw):
    defaults = dict(step_size=0.05, max_epochs=3, seed=99)
    defaults.update(kw)
    return SGDConfig(**defaults)


class TestScheduleValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            ShmSchedule(workers=0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            ShmSchedule(workers=1, batch_size=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            ShmSchedule(workers=1, epoch_timeout=0.0)

    def test_rejects_unsupported_model(self, tiny_mlp_data):
        model = make_model("mlp", tiny_mlp_data)
        init = model.init_params(derive_rng(7, "shmtest"))
        with pytest.raises(ConfigurationError):
            train_shm(
                model,
                tiny_mlp_data.X,
                tiny_mlp_data.y,
                init,
                _config(),
                ShmSchedule(workers=1),
            )

    def test_default_workers_bounded_by_host(self):
        assert 1 <= default_shm_workers() <= max(4, os.cpu_count() or 1)


class TestSingleWorkerDeterminism:
    def test_matches_sequential_sgd(self, setup):
        """One worker = no races: the run must equal serial incremental
        SGD over the same shuffled order (1e-12: the vectorised margin
        uses a different reduction order than the scalar dot)."""
        model, ds, init = setup
        res = train_shm(model, ds.X, ds.y, init, _config(), ShmSchedule(workers=1))
        expected = init.copy()
        rng = derive_rng(99, "shm/1/0")
        part = np.arange(ds.X.shape[0], dtype=np.int64)
        for _ in range(res.epochs_run):
            order = part[rng.permutation(part.shape[0])]
            model.serial_sgd_epoch(ds.X, ds.y, order, expected, 0.05)
        np.testing.assert_allclose(res.params, expected, rtol=0, atol=1e-12)

    def test_repeated_runs_identical(self, setup):
        model, ds, init = setup
        a = train_shm(model, ds.X, ds.y, init, _config(), ShmSchedule(workers=1))
        b = train_shm(model, ds.X, ds.y, init, _config(), ShmSchedule(workers=1))
        assert np.array_equal(a.params, b.params)
        assert a.curve.losses == b.curve.losses

    def test_no_conflicts_or_staleness_alone(self, setup):
        model, ds, init = setup
        res = train_shm(model, ds.X, ds.y, init, _config(), ShmSchedule(workers=1))
        assert res.counters[keys.STALE_READS] == 0
        assert res.counters[keys.UPDATE_CONFLICTS] == 0


class TestConcurrentIntegrity:
    def test_buffer_finite_and_learning_under_races(self, setup):
        """Lock-free concurrent writes must leave a finite, improving
        model — per-word atomicity means no torn doubles."""
        model, ds, init = setup
        res = train_shm(
            model,
            ds.X,
            ds.y,
            init,
            _config(max_epochs=5),
            ShmSchedule(workers=3, batch_size=4),
        )
        assert np.all(np.isfinite(res.params))
        assert res.workers == 3
        assert not res.diverged
        assert res.curve.final_loss < res.curve.initial_loss

    def test_hogbatch_minibatches_learn(self, setup):
        """Measured Hogbatch (batch_size > 1): fewer, coarser updates
        must still drive the loss down and account for every example."""
        model, ds, init = setup
        res = train_shm(
            model,
            ds.X,
            ds.y,
            init,
            _config(max_epochs=6),
            ShmSchedule(workers=2, batch_size=8),
        )
        assert res.batch_size == 8
        assert not res.diverged
        assert res.curve.final_loss < res.curve.initial_loss
        assert res.counters[keys.UPDATES_APPLIED] == ds.X.shape[0] * 6

    def test_slow_parent_loss_eval_does_not_break_workers(self, setup):
        """Regression: workers wait at the epoch barriers untimed —
        liveness is the parent watchdog's job.  A parent-side loss
        evaluation slower than epoch_timeout must not break the
        barrier under healthy workers."""
        model, ds, init = setup

        class SlowLoss(type(model)):
            def loss(self, X, y, params):
                time.sleep(0.45)
                return super().loss(X, y, params)

        slow = object.__new__(SlowLoss)
        slow.__dict__.update(model.__dict__)
        res = train_shm(
            slow,
            ds.X,
            ds.y,
            init,
            _config(),
            ShmSchedule(workers=2, epoch_timeout=0.3),
        )
        assert res.epochs_run == 3
        assert not res.diverged

    def test_wall_clock_measured(self, setup):
        model, ds, init = setup
        res = train_shm(model, ds.X, ds.y, init, _config(), ShmSchedule(workers=2))
        assert res.wall_seconds_total > 0
        assert res.wall_seconds_per_epoch == pytest.approx(
            res.wall_seconds_total / res.epochs_run
        )


class TestTelemetryConsistency:
    def test_counter_accounting(self, setup):
        """Every example is applied exactly once per epoch, whatever the
        worker count, and the totals land in the telemetry registry."""
        model, ds, init = setup
        tel = Telemetry()
        epochs = 3
        res = train_shm(
            model,
            ds.X,
            ds.y,
            init,
            _config(max_epochs=epochs),
            ShmSchedule(workers=2),
            tel,
        )
        n = ds.X.shape[0]
        assert res.counters[keys.UPDATES_APPLIED] == n * epochs
        counters = tel.counters()
        assert counters[keys.UPDATES_APPLIED] == n * epochs
        assert counters[keys.GRAD_EVALS] == n * epochs
        assert counters[keys.EPOCHS] == epochs
        # initial + one eval per epoch
        assert counters[keys.LOSS_EVALS] == epochs + 1
        assert keys.UPDATE_CONFLICTS in counters
        assert keys.STALE_READS in counters

    def test_wall_gauges_published(self, setup):
        model, ds, init = setup
        tel = Telemetry()
        res = train_shm(
            model, ds.X, ds.y, init, _config(), ShmSchedule(workers=1), tel
        )
        gauges = tel.gauges()
        assert gauges[keys.WALL_SECONDS_PER_EPOCH] == res.wall_seconds_per_epoch
        assert gauges[keys.WALL_SECONDS_TOTAL] == res.wall_seconds_total


class TestTeardown:
    def test_worker_death_raises_worker_error(self, setup, monkeypatch):
        """A worker dying mid-run must surface promptly as WorkerError,
        with every process joined and both shared segments unlinked."""
        model, ds, init = setup
        real = shm_mod._worker_loop

        def dying(*args):
            if args[8] == 1:  # worker_id
                os._exit(17)
            return real(*args)

        monkeypatch.setattr(shm_mod, "_worker_loop", dying)
        with pytest.raises(WorkerError):
            train_shm(
                model,
                ds.X,
                ds.y,
                init,
                _config(),
                ShmSchedule(workers=2, epoch_timeout=30.0),
            )
        import glob

        assert not glob.glob("/dev/shm/psm_*")

    def test_clean_run_leaves_no_segments(self, setup):
        import glob

        model, ds, init = setup
        train_shm(model, ds.X, ds.y, init, _config(), ShmSchedule(workers=2))
        assert not glob.glob("/dev/shm/psm_*")
