"""Chaos tests: seeded fault injection against the shm backend.

Every test drives a real worker pool through a planned failure and
asserts three things the recovery layer guarantees: the run either
completes or raises a structured :class:`WorkerError`, the ``fault.*``
counters account for what happened, and nothing leaks — no live child
processes, no ``/dev/shm`` segments — on any path.
"""

import glob
import multiprocessing as mp

import numpy as np
import pytest

from repro.datasets import load
from repro.faults import FaultPlan, RecoveryPolicy
from repro.models import make_model
from repro.parallel import ShmSchedule, train_shm
from repro.sgd import SGDConfig, train
from repro.telemetry import Telemetry, build_manifest, keys
from repro.utils.errors import WorkerError
from repro.utils.rng import derive_rng


def _assert_no_leaks():
    assert not glob.glob("/dev/shm/psm_*")
    assert mp.active_children() == []


@pytest.fixture(scope="module", params=["covtype", "w8a"], ids=["dense", "sparse"])
def setup(request):
    ds = load(request.param, "tiny")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(7, "chaostest"))
    return model, ds, init


def _config(**kw):
    defaults = dict(step_size=0.05, max_epochs=4, seed=99)
    defaults.update(kw)
    return SGDConfig(**defaults)


class TestKillRecovery:
    def test_repartition_completes_the_run(self, setup):
        """A worker killed mid-epoch: its partition round-robins onto
        the survivor and the run finishes every epoch, degraded."""
        model, ds, init = setup
        res = train_shm(
            model, ds.X, ds.y, init,
            _config(),
            ShmSchedule(workers=2),
            fault_plan=FaultPlan.single("kill", 2, worker=1),
            recovery=RecoveryPolicy(max_restarts=2, mode="repartition"),
        )
        assert res.epochs_run == 4
        assert not res.diverged
        assert np.all(np.isfinite(res.params))
        assert res.workers == 2 and res.workers_final == 1
        assert res.repartitions == 1 and res.restarts == 0
        assert res.counters[keys.FAULT_INJECTED] >= 1
        assert res.counters[keys.FAULT_REPARTITIONS] == 1
        assert res.counters[keys.FAULT_DEGRADED_EPOCHS] >= 1
        (entry,) = [e for e in res.recovery if e["action"] == "repartition"]
        assert entry["epoch"] == 2
        assert entry["cause"]["worker_id"] == 1
        assert entry["cause"]["exitcode"] == 23
        _assert_no_leaks()

    def test_respawn_mode_keeps_pool_size(self, setup):
        model, ds, init = setup
        res = train_shm(
            model, ds.X, ds.y, init,
            _config(),
            ShmSchedule(workers=2),
            fault_plan=FaultPlan.single("kill", 2, worker=0),
            recovery=RecoveryPolicy(max_restarts=2, mode="respawn"),
        )
        assert res.epochs_run == 4 and not res.diverged
        assert res.workers_final == 2
        assert res.restarts == 1 and res.repartitions == 0
        assert res.counters[keys.FAULT_WORKER_RESTARTS] == 1
        _assert_no_leaks()

    def test_fail_fast_without_policy(self, setup):
        """No recovery policy = PR-2 behaviour: first death raises a
        structured WorkerError and tears everything down."""
        model, ds, init = setup
        with pytest.raises(WorkerError) as exc:
            train_shm(
                model, ds.X, ds.y, init,
                _config(),
                ShmSchedule(workers=2),
                fault_plan=FaultPlan.single("kill", 2, worker=0),
            )
        err = exc.value
        assert err.worker_id == 0
        assert err.epoch == 2
        assert err.exitcode == 23
        assert err.phase in ("epoch-start", "epoch-end")
        assert err.describe()["worker_id"] == 0
        _assert_no_leaks()

    def test_budget_exhaustion_raises(self, setup):
        """Two kills against a budget of one: the second failure must
        surface, not retry forever."""
        model, ds, init = setup
        with pytest.raises(WorkerError):
            train_shm(
                model, ds.X, ds.y, init,
                _config(),
                ShmSchedule(workers=2),
                fault_plan=FaultPlan.parse(["kill@2:w0", "kill@3:w0"]),
                recovery=RecoveryPolicy(max_restarts=1, mode="respawn"),
            )
        _assert_no_leaks()


class TestStallRecovery:
    def test_stall_past_watchdog_is_respawned(self, setup):
        """A stalled worker leaves no corpse; the parent times out at
        the barrier, rebuilds the pool at full strength with a longer
        timeout, and finishes the run."""
        model, ds, init = setup
        res = train_shm(
            model, ds.X, ds.y, init,
            _config(),
            ShmSchedule(workers=2, epoch_timeout=1.0),
            fault_plan=FaultPlan.single("stall", 2, worker=0),
            recovery=RecoveryPolicy(max_restarts=2),
        )
        assert res.epochs_run == 4 and not res.diverged
        assert res.restarts == 1
        assert res.workers_final == 2
        (entry,) = [e for e in res.recovery if e["action"] == "respawn"]
        assert entry["cause"]["worker_id"] is None  # timeout, not a death
        assert entry["epoch_timeout"] == pytest.approx(2.0)  # 1.0 x backoff 2.0
        _assert_no_leaks()


class TestDelayIsHealthy:
    def test_late_arrival_within_window_needs_no_recovery(self, setup):
        """A delay inside the watchdog window is absorbed: the fault is
        counted as injected, but no recovery action fires."""
        model, ds, init = setup
        res = train_shm(
            model, ds.X, ds.y, init,
            _config(),
            ShmSchedule(workers=2),
            fault_plan=FaultPlan.single("delay", 2, worker=0, seconds=0.2),
            recovery=RecoveryPolicy(max_restarts=2),
        )
        assert res.epochs_run == 4 and not res.diverged
        assert res.faults_injected == 1
        assert res.restarts == 0 and res.repartitions == 0
        assert res.recovery == []
        assert res.counters[keys.FAULT_DEGRADED_EPOCHS] == 0
        _assert_no_leaks()


class TestNanPoisoning:
    def test_scrub_restores_finite_model(self, setup):
        model, ds, init = setup
        res = train_shm(
            model, ds.X, ds.y, init,
            _config(),
            ShmSchedule(workers=2),
            fault_plan=FaultPlan.single("nan", 2, worker=0),
            recovery=RecoveryPolicy(max_restarts=2),
        )
        assert not res.diverged
        assert np.all(np.isfinite(res.params))
        scrubs = [e for e in res.recovery if e["action"] == "nan_scrub"]
        assert scrubs and scrubs[0]["coordinates"] >= 1
        assert res.counters[keys.FAULT_DEGRADED_EPOCHS] >= 1
        _assert_no_leaks()

    def test_without_policy_poison_means_divergence(self, setup):
        """PR-2 semantics preserved: with no recovery, a poisoned model
        snapshot is recorded as divergence, not silently repaired."""
        model, ds, init = setup
        res = train_shm(
            model, ds.X, ds.y, init,
            _config(),
            ShmSchedule(workers=2),
            fault_plan=FaultPlan.single("nan", 2, worker=0),
        )
        assert res.diverged
        _assert_no_leaks()


class TestDeterminism:
    def test_recovery_trajectory_reproducible(self, setup):
        """Same (plan, seed, workers) → the same faults hit the same
        workers and the same recovery actions fire at the same epochs."""
        model, ds, init = setup

        def run():
            res = train_shm(
                model, ds.X, ds.y, init,
                _config(),
                ShmSchedule(workers=2),
                fault_plan=FaultPlan.single("kill", 2),  # seeded worker pick
                recovery=RecoveryPolicy(max_restarts=2),
            )
            return [(e["action"], e["epoch"]) for e in res.recovery]

        assert run() == run()
        _assert_no_leaks()

    def test_no_plan_and_empty_plan_bit_identical(self, setup):
        """The fault machinery must not perturb healthy runs: no plan,
        an empty plan, and an unused recovery policy all produce the
        bit-identical single-worker trajectory."""
        model, ds, init = setup
        base = train_shm(
            model, ds.X, ds.y, init, _config(), ShmSchedule(workers=1)
        )
        empty = train_shm(
            model, ds.X, ds.y, init, _config(), ShmSchedule(workers=1),
            fault_plan=FaultPlan(specs=()),
            recovery=RecoveryPolicy(max_restarts=3),
        )
        assert np.array_equal(base.params, empty.params)
        assert base.curve.losses == empty.curve.losses
        assert empty.recovery == []
        _assert_no_leaks()


class TestFacadeAndManifest:
    def test_fault_counters_and_trajectory_in_manifest(self):
        """End to end through train(): a seeded kill recovers, and the
        manifest records the fault counters and recovery trajectory."""
        tel = Telemetry()
        r = train(
            "lr", "covtype", strategy="asynchronous", scale="tiny",
            step_size=0.05, max_epochs=4, early_stop_tolerance=None,
            backend="shm", threads=2,
            fault_plan=FaultPlan.single("kill", 2), max_restarts=2,
            telemetry=tel,
        )
        m = r.measured
        assert m["max_restarts"] == 2
        assert m["restarts"] + m["repartitions"] == 1
        assert m["fault_plan"] == [
            {"kind": "kill", "epoch": 2, "worker": None, "seconds": None}
        ]
        assert m["recovery"]  # trajectory recorded
        manifest = build_manifest(r, tel, scale="tiny", max_epochs=4)
        assert manifest.config["backend"] == "shm"
        assert manifest.counters[keys.FAULT_INJECTED] >= 1
        assert (
            manifest.counters[keys.FAULT_WORKER_RESTARTS]
            + manifest.counters[keys.FAULT_REPARTITIONS]
        ) == 1
        measured = manifest.results["measured"]
        assert measured["recovery"] == m["recovery"]
        _assert_no_leaks()

    def test_cli_style_kill_run_recovers(self):
        """The CLI path: parsed spec strings drive the same machinery."""
        plan = FaultPlan.parse(["kill@2:w1"], seed=3)
        r = train(
            "lr", "w8a", strategy="asynchronous", scale="tiny",
            step_size=0.05, max_epochs=4, early_stop_tolerance=None,
            backend="shm", threads=2,
            fault_plan=plan, max_restarts=1,
        )
        assert r.measured["epochs_run"] == 4
        assert not r.diverged
        _assert_no_leaks()
