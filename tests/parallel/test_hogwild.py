"""Functional tests for the real shared-memory Hogwild backend.

True Hogwild is racy by construction, so these tests assert functional
outcomes (convergence, partitioning, error handling) rather than exact
values.
"""

import numpy as np
import pytest

from repro.models import make_model
from repro.parallel import hogwild_train
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def setup():
    from repro.datasets import load

    ds = load("w8a", "tiny")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(0, "realhw"))
    return model, ds, init


class TestHogwildTrain:
    def test_single_worker_learns(self, setup):
        model, ds, init = setup
        report = hogwild_train(model, ds.X, ds.y, init, step=1.0, epochs=10, workers=1)
        assert report.improved
        assert report.final_loss < 0.6 * report.initial_loss

    def test_multi_worker_learns_lock_free(self, setup):
        model, ds, init = setup
        report = hogwild_train(model, ds.X, ds.y, init, step=1.0, epochs=10, workers=3)
        assert report.workers == 3
        assert report.improved
        assert np.all(np.isfinite(report.params))

    def test_multi_worker_near_serial_quality(self, setup):
        """Hogwild's promise: the lock-free result is statistically
        close to the serial one (sparse data, few conflicts)."""
        model, ds, init = setup
        serial = hogwild_train(model, ds.X, ds.y, init, step=1.0, epochs=8, workers=1)
        racy = hogwild_train(model, ds.X, ds.y, init, step=1.0, epochs=8, workers=4)
        assert racy.final_loss < serial.final_loss * 2.0 + 0.05

    def test_init_not_mutated(self, setup):
        model, ds, init = setup
        before = init.copy()
        hogwild_train(model, ds.X, ds.y, init, step=0.5, epochs=2, workers=2)
        np.testing.assert_array_equal(init, before)

    def test_dense_data(self):
        from repro.datasets import load

        ds = load("covtype", "tiny")
        model = make_model("lr", ds)
        init = model.init_params(derive_rng(0, "realhw2"))
        report = hogwild_train(model, ds.X, ds.y, init, step=0.5, epochs=8, workers=2)
        assert report.improved

    def test_workers_capped_by_examples(self, setup):
        model, ds, init = setup
        report = hogwild_train(
            model, ds.X, ds.y, init, step=0.5, epochs=1, workers=10_000
        )
        assert report.workers <= ds.n_examples

    def test_validation(self, setup):
        model, ds, init = setup
        with pytest.raises(ConfigurationError):
            hogwild_train(model, ds.X, ds.y, init, step=0.5, epochs=0, workers=1)
        with pytest.raises(ConfigurationError):
            hogwild_train(model, ds.X, ds.y, init, step=0.5, epochs=1, workers=0)

    def test_mlp_rejected(self, tiny_mlp_data):
        model = make_model("mlp", tiny_mlp_data)
        init = model.init_params(derive_rng(0, "realhw3"))
        with pytest.raises(ConfigurationError, match="serial_sgd_epoch"):
            hogwild_train(
                model, tiny_mlp_data.X, tiny_mlp_data.y, init, step=0.5, epochs=1
            )
