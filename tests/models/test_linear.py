"""Tests for the linear models (LR, SVM)."""

import numpy as np
import pytest

from repro.linalg import recording
from repro.models import LinearSVM, LogisticRegression, max_grad_error
from repro.utils import make_rng
from repro.utils.errors import ConfigurationError


@pytest.fixture(params=[LogisticRegression, LinearSVM], ids=["lr", "svm"])
def model_cls(request):
    return request.param


class TestBasics:
    def test_param_count(self, model_cls):
        assert model_cls(17).n_params == 17

    def test_rejects_bad_dims(self, model_cls):
        with pytest.raises(ConfigurationError):
            model_cls(0)
        with pytest.raises(ConfigurationError):
            model_cls(5, l2=-1.0)

    def test_init_nonzero_deterministic(self, model_cls):
        m = model_cls(8)
        a = m.init_params(make_rng(3))
        b = m.init_params(make_rng(3))
        np.testing.assert_array_equal(a, b)
        assert np.any(a != 0)

    def test_params_shape_checked(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        with pytest.raises(ConfigurationError, match="params shape"):
            m.loss(tiny_sparse.X, tiny_sparse.y, np.zeros(3))


class TestGradients:
    def test_full_grad_matches_fd_sparse(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        w = m.init_params(make_rng(0))
        coords = make_rng(1).choice(m.n_params, 25, replace=False)
        assert max_grad_error(m, tiny_sparse.X, tiny_sparse.y, w, coords=coords) < 1e-6

    def test_full_grad_matches_fd_dense(self, model_cls, tiny_dense):
        m = model_cls(tiny_dense.n_features)
        w = m.init_params(make_rng(0))
        assert max_grad_error(m, tiny_dense.X, tiny_dense.y, w) < 1e-6

    def test_full_grad_with_l2(self, tiny_dense):
        m = LogisticRegression(tiny_dense.n_features, l2=0.1)
        w = m.init_params(make_rng(0))
        assert max_grad_error(m, tiny_dense.X, tiny_dense.y, w) < 1e-6

    def test_minibatch_grad_equals_subset_full_grad(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        w = m.init_params(make_rng(0))
        rows = np.arange(10, 30)
        sub = tiny_sparse.X.take_rows(rows)
        expected = m.full_grad(sub, tiny_sparse.y[rows], w)
        got = m.minibatch_grad(tiny_sparse.X, tiny_sparse.y, rows, w)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_sparse_dense_gradient_agreement(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        w = m.init_params(make_rng(0))
        g_sparse = m.full_grad(tiny_sparse.X, tiny_sparse.y, w)
        g_dense = m.full_grad(tiny_sparse.to_dense(), tiny_sparse.y, w)
        np.testing.assert_allclose(g_sparse, g_dense, atol=1e-10)


class TestExampleUpdates:
    def test_mean_of_updates_equals_minibatch_grad(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        w = m.init_params(make_rng(0))
        rows = np.arange(24)
        step = 0.2
        acc = np.zeros(m.n_params)
        for idx, delta in m.example_updates(tiny_sparse.X, tiny_sparse.y, rows, w, step):
            if idx is None:
                acc += delta
            else:
                np.add.at(acc, idx, delta)
        expected = -step * m.minibatch_grad(tiny_sparse.X, tiny_sparse.y, rows, w) * rows.size
        np.testing.assert_allclose(acc, expected, atol=1e-10)

    def test_sparse_updates_touch_row_support_only(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        w = m.init_params(make_rng(0))
        rows = np.arange(6)
        for k, (idx, _val) in enumerate(
            m.example_updates(tiny_sparse.X, tiny_sparse.y, rows, w, 0.1)
        ):
            expected_idx, _ = tiny_sparse.X.row(rows[k])
            np.testing.assert_array_equal(idx, expected_idx)

    def test_dense_updates_full_width(self, model_cls, tiny_dense):
        m = model_cls(tiny_dense.n_features)
        w = m.init_params(make_rng(0))
        ups = m.example_updates(tiny_dense.X, tiny_dense.y, np.arange(3), w, 0.1)
        assert all(idx is None and delta.shape == (m.n_params,) for idx, delta in ups)


class TestSerialEpoch:
    def test_matches_one_by_one_generic_path(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        w0 = m.init_params(make_rng(0))
        order = make_rng(1).permutation(tiny_sparse.n_examples)
        fast = w0.copy()
        m.serial_sgd_epoch(tiny_sparse.X, tiny_sparse.y, order, fast, 0.5)
        slow = w0.copy()
        for i in order:
            for idx, delta in m.example_updates(
                tiny_sparse.X, tiny_sparse.y, np.asarray([i]), slow, 0.5
            ):
                if idx is None:
                    slow += delta
                else:
                    np.add.at(slow, idx, delta)
        np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_dense_path_matches(self, model_cls, tiny_dense):
        m = model_cls(tiny_dense.n_features)
        w0 = m.init_params(make_rng(0))
        order = np.arange(tiny_dense.n_examples)
        fast = w0.copy()
        m.serial_sgd_epoch(tiny_dense.X, tiny_dense.y, order, fast, 0.2)
        slow = w0.copy()
        for i in order:
            for idx, delta in m.example_updates(
                tiny_dense.X, tiny_dense.y, np.asarray([i]), slow, 0.2
            ):
                slow += delta
        np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_reduces_loss(self, model_cls, tiny_sparse):
        m = model_cls(tiny_sparse.n_features)
        w = m.init_params(make_rng(0))
        before = m.loss(tiny_sparse.X, tiny_sparse.y, w)
        m.serial_sgd_epoch(
            tiny_sparse.X, tiny_sparse.y, np.arange(tiny_sparse.n_examples), w, 0.5
        )
        assert m.loss(tiny_sparse.X, tiny_sparse.y, w) < before


class TestTraceShape:
    def test_sparse_grad_records_spmv_pipeline(self, tiny_sparse):
        m = LogisticRegression(tiny_sparse.n_features)
        w = m.init_params(make_rng(0))
        with recording() as tr:
            m.full_grad(tiny_sparse.X, tiny_sparse.y, w)
        names = [op.name for op in tr]
        assert names == ["margins", "label_margin", "link_derivative", "grad_accum"]

    def test_dense_rgemv_parallelism_not_example_scaled(self, tiny_dense):
        m = LogisticRegression(tiny_dense.n_features)
        w = m.init_params(make_rng(0))
        with recording() as tr:
            m.full_grad(tiny_dense.X, tiny_dense.y, w)
        grad_op = [op for op in tr if op.name == "grad_accum"][0]
        assert grad_op.parallelism_scales is False
