"""Tests for the loss functions and derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.losses import (
    hinge_dmargin,
    hinge_loss,
    logistic_dmargin,
    logistic_loss,
    softmax_cross_entropy,
    softmax_probs,
    stable_sigmoid,
)

finite_floats = st.floats(-50.0, 50.0)


class TestStableSigmoid:
    def test_values(self):
        np.testing.assert_allclose(stable_sigmoid(np.array([0.0])), [0.5])

    def test_extremes_finite(self):
        out = stable_sigmoid(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    @given(st.lists(finite_floats, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, zs):
        z = np.asarray(zs)
        np.testing.assert_allclose(
            stable_sigmoid(z) + stable_sigmoid(-z), 1.0, atol=1e-12
        )


class TestLogistic:
    def test_loss_at_zero_margin(self):
        np.testing.assert_allclose(logistic_loss(np.array([0.0])), [np.log(2.0)])

    def test_loss_overflow_safe(self):
        out = logistic_loss(np.array([-1e4]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(1e4)

    @given(finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_derivative_matches_finite_difference(self, m):
        eps = 1e-6
        num = (logistic_loss(np.array([m + eps])) - logistic_loss(np.array([m - eps]))) / (
            2 * eps
        )
        np.testing.assert_allclose(logistic_dmargin(np.array([m])), num, atol=1e-5)

    def test_derivative_bounded(self):
        d = logistic_dmargin(np.linspace(-30, 30, 101))
        assert np.all(d <= 0) and np.all(d >= -1)


class TestHinge:
    def test_loss_values(self):
        np.testing.assert_allclose(
            hinge_loss(np.array([-1.0, 0.0, 1.0, 2.0])), [2.0, 1.0, 0.0, 0.0]
        )

    def test_subgradient_regions(self):
        np.testing.assert_array_equal(
            hinge_dmargin(np.array([0.5, 1.0, 1.5])), [-1.0, 0.0, 0.0]
        )

    @given(finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_subgradient_valid(self, m):
        """Subgradient inequality: f(x) >= f(m) + g*(x - m) for all x."""
        g = float(hinge_dmargin(np.array([m]))[0])
        f_m = float(hinge_loss(np.array([m]))[0])
        for x in (m - 1.0, m + 1.0, 0.0, 1.0):
            f_x = float(hinge_loss(np.array([x]))[0])
            assert f_x >= f_m + g * (x - m) - 1e-9


class TestSoftmax:
    def test_probs_sum_to_one(self, rng):
        p = softmax_probs(rng.standard_normal((5, 3)) * 20)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)

    def test_probs_overflow_safe(self):
        p = softmax_probs(np.array([[1e4, -1e4]]))
        assert np.isfinite(p).all()

    def test_cross_entropy_matches_direct(self, rng):
        logits = rng.standard_normal((6, 2))
        classes = rng.integers(0, 2, size=6)
        direct = -np.log(softmax_probs(logits)[np.arange(6), classes])
        np.testing.assert_allclose(
            softmax_cross_entropy(logits, classes), direct, atol=1e-12
        )

    def test_cross_entropy_of_certain_prediction(self):
        out = softmax_cross_entropy(np.array([[100.0, 0.0]]), np.array([0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
