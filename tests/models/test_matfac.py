"""Tests for the matrix-factorisation extension."""

import numpy as np
import pytest

from repro.asyncsim import AsyncSchedule, run_async_epoch
from repro.datasets.ratings import generate_ratings
from repro.models.gradcheck import max_grad_error
from repro.models.matfac import MatrixFactorization
from repro.utils import derive_rng, make_rng
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def ratings():
    return generate_ratings(
        n_users=40, n_items=30, n_ratings=600, rank=4, seed=0
    )


@pytest.fixture(scope="module")
def mf(ratings):
    return MatrixFactorization(ratings.n_users, ratings.n_items, rank=4)


class TestConstruction:
    def test_param_count(self):
        m = MatrixFactorization(10, 7, rank=3)
        assert m.n_params == (10 + 7) * 3

    def test_factor_views(self, mf):
        params = mf.init_params(make_rng(0))
        U, V = mf.factors(params)
        assert U.shape == (mf.n_users, mf.rank)
        assert V.shape == (mf.n_items, mf.rank)
        U[0, 0] = 42.0
        assert params[0] == 42.0  # view, not copy

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MatrixFactorization(0, 5)
        with pytest.raises(ConfigurationError):
            MatrixFactorization(5, 5, rank=0)
        with pytest.raises(ConfigurationError):
            MatrixFactorization(5, 5, l2=-1.0)


class TestRatingsData:
    def test_encoding_shape(self, ratings):
        assert ratings.X.n_cols == ratings.n_users + ratings.n_items
        assert ratings.X.row_nnz.max() == ratings.X.row_nnz.min() == 2

    def test_no_duplicate_pairs(self, ratings):
        seen = set()
        for r in range(ratings.n_ratings):
            idx, _ = ratings.X.row(r)
            pair = (int(idx[0]), int(idx[1]))
            assert pair not in seen
            seen.add(pair)

    def test_popularity_skew(self):
        ds = generate_ratings(n_users=100, n_items=200, n_ratings=4000, seed=1)
        counts = ds.item_popularity()
        assert counts.sum() == ds.n_ratings
        assert counts.max() > 4 * max(1.0, np.median(counts))

    def test_deterministic(self):
        a = generate_ratings(seed=5, n_ratings=500)
        b = generate_ratings(seed=5, n_ratings=500)
        np.testing.assert_array_equal(a.y, b.y)


class TestGradients:
    def test_full_grad_matches_fd(self, ratings, mf):
        params = mf.init_params(make_rng(0))
        coords = make_rng(1).choice(mf.n_params, 30, replace=False)
        err = max_grad_error(mf, ratings.X, ratings.y, params, coords=coords)
        assert err < 1e-5

    def test_grad_with_l2(self, ratings):
        m = MatrixFactorization(ratings.n_users, ratings.n_items, rank=4, l2=0.05)
        params = m.init_params(make_rng(0))
        coords = make_rng(2).choice(m.n_params, 25, replace=False)
        assert max_grad_error(m, ratings.X, ratings.y, params, coords=coords) < 1e-5

    def test_example_updates_touch_2k_coords(self, ratings, mf):
        params = mf.init_params(make_rng(0))
        ups = mf.example_updates(ratings.X, ratings.y, np.arange(5), params, 0.1)
        for idx, val in ups:
            assert idx.size == 2 * mf.rank
            assert val.shape == idx.shape

    def test_serial_epoch_matches_one_by_one(self, ratings, mf):
        params = mf.init_params(make_rng(0))
        order = make_rng(3).permutation(ratings.n_ratings)[:100]
        fast = params.copy()
        mf.serial_sgd_epoch(ratings.X, ratings.y, order, fast, 0.05)
        slow = params.copy()
        for r in order:
            for idx, delta in mf.example_updates(
                ratings.X, ratings.y, np.asarray([r]), slow, 0.05
            ):
                np.add.at(slow, idx, delta)
        np.testing.assert_allclose(fast, slow, atol=1e-12)


class TestTraining:
    def test_hogwild_recovers_low_rank_structure(self, ratings, mf):
        params = mf.init_params(make_rng(0))
        initial = mf.loss(ratings.X, ratings.y, params)
        rng = derive_rng(0, "mf_train")
        for _ in range(30):
            run_async_epoch(
                mf, ratings.X, ratings.y, params, 0.05,
                AsyncSchedule(concurrency=8), rng,
            )
        final = mf.loss(ratings.X, ratings.y, params)
        assert final < 0.25 * initial
        assert mf.rmse(ratings.X, ratings.y, params) < 0.5

    def test_staleness_degrades_mf_too(self, ratings, mf):
        """The paper's asynchronous trade-off carries to its future-work
        model: massive concurrency converges slower."""
        params0 = mf.init_params(make_rng(0))
        losses = {}
        for c in (1, ratings.n_ratings):
            w = params0.copy()
            rng = derive_rng(1, "mf_stale")
            for _ in range(10):
                run_async_epoch(
                    mf, ratings.X, ratings.y, w, 0.05, AsyncSchedule(concurrency=c), rng
                )
            losses[c] = mf.loss(ratings.X, ratings.y, w)
        assert losses[1] < losses[ratings.n_ratings]

    def test_rejects_bad_encoding(self, mf):
        from repro.linalg import CSRMatrix

        bad = CSRMatrix.from_rows(
            [(np.asarray([0, 1, 2]), np.ones(3))], mf.n_users + mf.n_items
        )
        with pytest.raises(ConfigurationError):
            mf.loss(bad, np.zeros(1), mf.init_params(make_rng(0)))
