"""Tests for the model factory and gradcheck utilities."""

import numpy as np
import pytest

from repro.datasets import load
from repro.models import (
    MLP,
    LinearSVM,
    LogisticRegression,
    finite_difference_grad,
    make_model,
)
from repro.utils import make_rng
from repro.utils.errors import ConfigurationError


class TestMakeModel:
    def test_lr_svm_sized_to_dataset(self, tiny_sparse):
        lr = make_model("lr", tiny_sparse)
        svm = make_model("svm", tiny_sparse)
        assert isinstance(lr, LogisticRegression)
        assert isinstance(svm, LinearSVM)
        assert lr.n_params == svm.n_params == tiny_sparse.n_features

    def test_mlp_uses_profile_architecture(self, tiny_mlp_data):
        m = make_model("mlp", tiny_mlp_data)
        assert isinstance(m, MLP)
        assert m.arch == tiny_mlp_data.profile.mlp_arch

    def test_mlp_rejects_untransformed_dataset(self):
        base = load("real-sim", "tiny")
        with pytest.raises(ConfigurationError, match="MLP-transformed"):
            make_model("mlp", base)

    def test_unknown_task(self, tiny_sparse):
        with pytest.raises(ConfigurationError, match="unknown task"):
            make_model("cnn", tiny_sparse)


class TestGradcheckUtilities:
    def test_finite_difference_selected_coords(self, tiny_dense):
        m = make_model("lr", tiny_dense)
        w = m.init_params(make_rng(0))
        coords = np.array([0, 5, 10])
        got_coords, approx = finite_difference_grad(
            m, tiny_dense.X, tiny_dense.y, w, coords=coords
        )
        np.testing.assert_array_equal(got_coords, coords)
        analytic = m.full_grad(tiny_dense.X, tiny_dense.y, w)[coords]
        np.testing.assert_allclose(approx, analytic, atol=1e-6)

    def test_does_not_mutate_params(self, tiny_dense):
        m = make_model("lr", tiny_dense)
        w = m.init_params(make_rng(0))
        w_copy = w.copy()
        finite_difference_grad(m, tiny_dense.X, tiny_dense.y, w, coords=np.array([0]))
        np.testing.assert_array_equal(w, w_copy)
