"""Tests for the fully-connected MLP."""

import numpy as np
import pytest

from repro.linalg import recording
from repro.models import MLP, max_grad_error
from repro.utils import make_rng
from repro.utils.errors import ConfigurationError


@pytest.fixture()
def net():
    return MLP((20, 10, 5, 2))


class TestConstruction:
    def test_param_count(self):
        m = MLP((3, 4, 2))
        # W1 3x4 + b1 4 + W2 4x2 + b2 2
        assert m.n_params == 12 + 4 + 8 + 2

    def test_table1_architectures(self):
        for arch in ((54, 10, 5, 2), (300, 10, 5, 2), (50, 10, 5, 2)):
            m = MLP(arch)
            assert m.arch == arch
            assert m.n_layers == 3

    def test_rejects_non_binary_head(self):
        with pytest.raises(ConfigurationError, match="2 units"):
            MLP((5, 3))

    def test_rejects_bad_widths(self):
        with pytest.raises(ConfigurationError):
            MLP((5, 0, 2))

    def test_views_are_views(self, net):
        params = net.init_params(make_rng(0))
        W0, b0 = net.views(params)[0]
        W0[0, 0] = 123.0
        b0[0] = -7.0
        W0b, b0b = net.views(params)[0]
        assert W0b[0, 0] == 123.0 and b0b[0] == -7.0

    def test_init_xavier_scale(self):
        m = MLP((100, 50, 2))
        params = m.init_params(make_rng(0))
        W0, b0 = m.views(params)[0]
        assert abs(W0.std() - np.sqrt(2.0 / 150)) < 0.02
        assert np.all(b0 == 0.0)


class TestForwardLoss:
    def test_loss_positive_finite(self, net, rng):
        X = rng.standard_normal((30, 20))
        y = np.where(rng.random(30) > 0.5, 1.0, -1.0)
        params = net.init_params(make_rng(0))
        loss = net.loss(X, y, params)
        assert np.isfinite(loss) and loss > 0

    def test_initial_loss_near_log2(self, net, rng):
        """A symmetric random init predicts ~uniformly -> CE near log 2
        (Xavier-scale logits leave some spread, hence the loose band)."""
        X = rng.standard_normal((200, 20))
        y = np.where(rng.random(200) > 0.5, 1.0, -1.0)
        loss = net.loss(X, y, net.init_params(make_rng(0)))
        assert abs(loss - np.log(2.0)) < 0.25

    def test_predict_margin_sign_tracks_logits(self, net, rng):
        X = rng.standard_normal((10, 20))
        params = net.init_params(make_rng(0))
        margins = net.predict_margin(X, params)
        assert margins.shape == (10,)

    def test_accuracy_bounds(self, net, rng):
        X = rng.standard_normal((40, 20))
        y = np.where(rng.random(40) > 0.5, 1.0, -1.0)
        acc = net.accuracy(X, y, net.init_params(make_rng(0)))
        assert 0.0 <= acc <= 1.0


class TestGradients:
    def test_full_grad_matches_fd(self, net, rng):
        X = rng.standard_normal((25, 20))
        y = np.where(rng.random(25) > 0.5, 1.0, -1.0)
        params = net.init_params(make_rng(0))
        coords = make_rng(1).choice(net.n_params, 40, replace=False)
        assert max_grad_error(net, X, y, params, coords=coords) < 1e-6

    def test_grad_with_sparse_input(self, tiny_sparse):
        m = MLP((tiny_sparse.n_features, 6, 2))
        params = m.init_params(make_rng(0))
        coords = make_rng(1).choice(m.n_params, 30, replace=False)
        assert (
            max_grad_error(m, tiny_sparse.X, tiny_sparse.y, params, coords=coords)
            < 1e-6
        )

    def test_grad_with_l2(self, rng):
        m = MLP((8, 4, 2), l2=0.05)
        X = rng.standard_normal((15, 8))
        y = np.where(rng.random(15) > 0.5, 1.0, -1.0)
        params = m.init_params(make_rng(0))
        assert max_grad_error(m, X, y, params) < 1e-6

    def test_minibatch_grad_subset(self, net, rng):
        X = rng.standard_normal((30, 20))
        y = np.where(rng.random(30) > 0.5, 1.0, -1.0)
        params = net.init_params(make_rng(0))
        rows = np.array([2, 5, 9])
        got = net.minibatch_grad(X, y, rows, params)
        expected = net.full_grad(X[rows], y[rows], params)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_batch_update_is_scaled_negative_grad(self, net, rng):
        X = rng.standard_normal((16, 20))
        y = np.where(rng.random(16) > 0.5, 1.0, -1.0)
        params = net.init_params(make_rng(0))
        rows = np.arange(16)
        idx, delta = net.batch_update(X, y, rows, params, step=0.7)
        assert idx is None
        np.testing.assert_allclose(
            delta, -0.7 * net.minibatch_grad(X, y, rows, params), atol=1e-12
        )


class TestTraining:
    def test_minibatch_sgd_learns(self, tiny_mlp_data):
        """Mini-batch SGD escapes the symmetric plateau and fits the
        (linearly generated) labels well within a couple hundred epochs."""
        from repro.asyncsim import AsyncSchedule, run_async_epoch
        from repro.utils import derive_rng

        ds = tiny_mlp_data
        m = MLP(ds.profile.mlp_arch)
        params = m.init_params(make_rng(0))
        first = m.loss(ds.X, ds.y, params)
        schedule = AsyncSchedule(concurrency=1, batch_size=32)
        rng = derive_rng(0, "mlp_train_test")
        for _ in range(150):
            run_async_epoch(m, ds.X, ds.y, params, 1.0, schedule, rng)
        assert m.loss(ds.X, ds.y, params) < 0.5 * first
        assert m.accuracy(ds.X, ds.y, params) > 0.85


class TestTraceShape:
    def test_weight_gradient_gemms_flagged_serial_shape(self, net, rng):
        """The dW products carry result sizes below the ViennaCL
        threshold and model-dimension parallelism — the combination the
        paper's ~2x MLP finding hinges on."""
        X = rng.standard_normal((40, 20))
        y = np.where(rng.random(40) > 0.5, 1.0, -1.0)
        params = net.init_params(make_rng(0))
        with recording() as tr:
            net.full_grad(X, y, params)
        dw_ops = [op for op in tr if op.name.startswith("bwd_dw")]
        assert len(dw_ops) == 3
        for op in dw_ops:
            assert op.parallelism_scales is False
            assert op.result_size <= 5000
        fwd = [op for op in tr if op.name.startswith("fwd_gemm")]
        assert all(op.parallelism_scales for op in fwd)
