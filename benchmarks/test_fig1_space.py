"""Benchmark: the complete Fig. 1 design space (including light circles).

The paper draws eight (strategy x architecture x sparsity) combinations
and implements the dark subset; this module maps every corner for LR on
a dense and a sparse dataset and asserts the paper's implicit claim —
the dark circles are dark because they win.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import run_fig1_space

from conftest import publish


@pytest.fixture(scope="module")
def space_sparse(ctx):
    return run_fig1_space("lr", "real-sim", ctx)


@pytest.fixture(scope="module")
def space_dense(ctx):
    return run_fig1_space("lr", "covtype", ctx)


class TestSparseDatasetCube:
    def test_publish(self, space_sparse, artifact_dir):
        publish(artifact_dir, "fig1_space_real-sim.txt", space_sparse.render())
        assert len(space_sparse.cells) == 8

    def test_dark_circles_win(self, space_sparse):
        assert space_sparse.dark_circles_beat_light_ones()

    def test_densification_always_slows_iterations(self, space_sparse):
        """The light 'dense representation of sparse data' corners pay
        for streaming the zeros on every backend and strategy."""
        for strategy in ("synchronous", "asynchronous"):
            for arch in ("cpu-par", "gpu"):
                auto = space_sparse.cell(strategy, arch, "auto")
                dense = space_sparse.cell(strategy, arch, "dense")
                assert dense.time_per_iter > auto.time_per_iter, (strategy, arch)

    def test_sync_prefers_gpu_async_prefers_cpu(self, space_sparse):
        sync_gpu = space_sparse.cell("synchronous", "gpu", "auto")
        sync_cpu = space_sparse.cell("synchronous", "cpu-par", "auto")
        assert sync_gpu.time_per_iter < sync_cpu.time_per_iter
        async_gpu = space_sparse.cell("asynchronous", "gpu", "auto")
        async_cpu = space_sparse.cell("asynchronous", "cpu-par", "auto")
        assert async_cpu.time_to_convergence < async_gpu.time_to_convergence


class TestDenseDatasetCube:
    def test_publish(self, space_dense, artifact_dir):
        publish(artifact_dir, "fig1_space_covtype.txt", space_dense.render())

    def test_dark_circles_win(self, space_dense):
        assert space_dense.dark_circles_beat_light_ones()

    def test_csr_view_of_dense_data_never_helps(self, space_dense):
        for strategy in ("synchronous", "asynchronous"):
            for arch in ("cpu-par", "gpu"):
                auto = space_dense.cell(strategy, arch, "auto")
                sparse = space_dense.cell(strategy, arch, "sparse")
                assert sparse.time_per_iter >= 0.95 * auto.time_per_iter

    def test_statistical_efficiency_representation_invariant(self, space_dense):
        """Representation is storage, not mathematics: epoch counts per
        (strategy, architecture) must agree across representations."""
        for strategy in ("synchronous", "asynchronous"):
            for arch in ("cpu-par", "gpu"):
                a = space_dense.cell(strategy, arch, "auto").epochs
                b = space_dense.cell(strategy, arch, "sparse").epochs
                if math.isfinite(a) and math.isfinite(b):
                    assert a == b, (strategy, arch)
