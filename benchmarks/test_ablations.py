"""Ablation benchmarks for the design choices DESIGN.md section 6 lists.

Each ablation flips one modelling mechanism off (or sweeps its
parameter) and verifies that the corresponding paper phenomenon
*disappears* — evidence that the mechanism, not a tuning accident,
produces the result.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.datasets import load, load_mlp
from repro.hardware import AsyncWorkload, CpuModel, GpuModel, XEON_E5_2660V4_DUAL
from repro.linalg import VIENNACL_POLICY, recording
from repro.linalg.policy import KernelPolicy
from repro.models import make_model
from repro.sgd.runner import full_scale_factor, working_set_bytes
from repro.utils import derive_rng

from conftest import publish


@pytest.fixture(scope="module")
def covtype_workload():
    ds = load("covtype", "small")
    return AsyncWorkload.for_linear(ds, make_model("lr", ds))


@pytest.fixture(scope="module")
def mlp_trace():
    ds = load_mlp("real-sim", "small")
    model = make_model("mlp", ds)
    w = model.init_params(derive_rng(0, "abl"))
    with recording() as tr:
        model.full_grad(ds.X, ds.y, w)
    return tr.scaled(full_scale_factor(ds, "mlp")), working_set_bytes(ds, model, "mlp")


class TestAblationCoherence:
    """Ablation 4: the coherence model is what makes dense parallel
    Hogwild slower than sequential."""

    def test_phenomenon_disappears_without_coherence(self, covtype_workload):
        on = CpuModel()
        off = CpuModel(model_coherence=False)
        assert on.async_epoch_time(covtype_workload, 56) > on.async_epoch_time(
            covtype_workload, 1
        )
        assert off.async_epoch_time(covtype_workload, 56) < off.async_epoch_time(
            covtype_workload, 1
        )

    def test_benchmark_publish(self, covtype_workload, artifact_dir):
        rows = []
        for label, model in (("coherence-on", CpuModel()), ("coherence-off", CpuModel(model_coherence=False))):
            rows.append(
                f"{label}: seq={model.async_epoch_time(covtype_workload, 1)*1e3:.2f}ms "
                f"par={model.async_epoch_time(covtype_workload, 56)*1e3:.2f}ms"
            )
        publish(artifact_dir, "ablation_coherence.txt", "\n".join(rows))


class TestAblationWarpShuffle:
    """Ablation 3: warp-shuffle pre-aggregation keeps dense GPU Hogwild
    viable; without it the atomic floor explodes."""

    def test_shuffle_bounds_atomics(self, covtype_workload):
        on = GpuModel(warp_shuffle=True).async_breakdown(covtype_workload)
        off = GpuModel(warp_shuffle=False).async_breakdown(covtype_workload)
        assert off.total > 3.0 * on.total


class TestAblationGemmThreshold:
    """Ablation 2: sweep the ViennaCL GEMM parallelisation threshold and
    watch the MLP parallel speedup move from ~fully-parallel to ~2x."""

    @pytest.mark.parametrize("threshold", [0, 500, 5000, 50_000])
    def test_threshold_monotone(self, mlp_trace, threshold):
        trace, ws = mlp_trace
        policy = KernelPolicy(name=f"thr{threshold}", gemm_min_result_size=threshold)
        cpu = CpuModel(policy=policy)
        speedup = cpu.sync_epoch_time(trace, 1, ws) / cpu.sync_epoch_time(trace, 56, ws)
        if threshold == 0:
            assert speedup > 5.0
        if threshold == 50_000:
            assert speedup < 3.5

    def test_paper_policy_sits_at_two(self, mlp_trace, artifact_dir):
        trace, ws = mlp_trace
        lines = []
        for threshold in (0, 500, 5000, 50_000):
            policy = KernelPolicy(name=f"thr{threshold}", gemm_min_result_size=threshold)
            cpu = CpuModel(policy=policy)
            s = cpu.sync_epoch_time(trace, 1, ws) / cpu.sync_epoch_time(trace, 56, ws)
            lines.append(f"gemm_min_result_size={threshold:>6}: seq/par speedup = {s:.2f}x")
        publish(artifact_dir, "ablation_gemm_threshold.txt", "\n".join(lines))
        cpu = CpuModel(policy=VIENNACL_POLICY)
        s = cpu.sync_epoch_time(trace, 1, ws) / cpu.sync_epoch_time(trace, 56, ws)
        assert 1.5 <= s <= 3.5


class TestAblationCacheResidency:
    """Ablation 5: the aggregate-cache residency bonus is what produces
    super-linear parallel speedup; with a full single-thread L3 share
    it shrinks drastically."""

    def test_residency_drives_superlinearity(self):
        ds = load("w8a", "small")
        model = make_model("lr", ds)
        w = model.init_params(derive_rng(0, "abl2"))
        with recording() as tr:
            model.full_grad(ds.X, ds.y, w)
        trace = tr.scaled(full_scale_factor(ds, "lr"))
        ws = working_set_bytes(ds, model, "lr")

        normal = CpuModel()
        generous_seq = CpuModel(spec=replace(XEON_E5_2660V4_DUAL, seq_l3_fraction=1.0))
        s_normal = normal.sync_epoch_time(trace, 1, ws) / normal.sync_epoch_time(trace, 56, ws)
        s_generous = generous_seq.sync_epoch_time(trace, 1, ws) / generous_seq.sync_epoch_time(trace, 56, ws)
        assert s_normal > 2.0 * s_generous


class TestAblationStaleness:
    """Ablation 1: statistical efficiency must degrade monotonically-ish
    with the simulated concurrency — re-measured, not assumed."""

    def test_epoch_inflation_with_concurrency(self, artifact_dir):
        import numpy as np

        from repro.asyncsim import AsyncSchedule, run_async_epoch
        from repro.sgd.convergence import tolerance_threshold

        ds = load("w8a", "small")
        model = make_model("lr", ds)
        init = model.init_params(derive_rng(0, "stale"))
        initial = model.loss(ds.X, ds.y, init)
        target = tolerance_threshold(0.05, 0.10, initial)
        lines, epochs_needed = [], {}
        for c in (1, 56, 512, 2048):
            w = init.copy()
            rng = derive_rng(0, f"stale/{c}")
            epochs = None
            for e in range(1, 120):
                run_async_epoch(model, ds.X, ds.y, w, 1.0, AsyncSchedule(concurrency=c), rng)
                if model.loss(ds.X, ds.y, w) <= target:
                    epochs = e
                    break
            epochs_needed[c] = epochs if epochs is not None else np.inf
            lines.append(f"concurrency={c:>5}: epochs to band = {epochs_needed[c]}")
        publish(artifact_dir, "ablation_staleness.txt", "\n".join(lines))
        assert epochs_needed[1] <= epochs_needed[512]
        assert epochs_needed[56] <= epochs_needed[2048]


class TestAblationLowPrecision:
    """Extension (the paper's future work): Buckwild-style low-precision
    models — how many bits can the shared model lose before statistical
    efficiency suffers?"""

    def test_precision_sweep(self, artifact_dir):
        import numpy as np

        from repro.asyncsim import AsyncSchedule
        from repro.sgd.lowprec import make_quantizer, run_quantized_epoch

        ds = load("w8a", "small")
        model = make_model("lr", ds)
        init = model.init_params(derive_rng(0, "lowprec"))
        lines = []
        final = {}
        for kind in ("float32", "bfloat16", "fixed8", "fixed4"):
            q = make_quantizer(kind)
            w = init.copy()
            rng = derive_rng(0, f"lowprec/{kind}")
            for _ in range(25):
                run_quantized_epoch(
                    model, ds.X, ds.y, w, 1.0, AsyncSchedule(concurrency=56), rng, q
                )
            final[kind] = model.loss(ds.X, ds.y, w)
            lines.append(f"{kind:>9} ({q.bits:>2} bits): loss after 25 epochs = {final[kind]:.4f}")
        publish(artifact_dir, "ablation_lowprecision.txt", "\n".join(lines))
        # float32/bfloat16 track full precision; 4-bit visibly degrades
        assert final["float32"] <= final["fixed4"]
        assert final["bfloat16"] <= final["fixed4"] + 0.02
        assert np.isfinite(final["fixed4"])
