"""Benchmark: the related-work parallelisation strategies, side by side.

Beyond the paper's own configurations, this compares the alternatives
its related-work section surveys — Cyclades [39] and model
averaging [42] — against Hogwild on a common footing, plus the genuine
lock-free shared-memory backend.  Quality checks encode each
algorithm's defining property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asyncsim import (
    AsyncSchedule,
    CycladesSchedule,
    run_async_epoch,
    run_cyclades_epoch,
)
from repro.datasets import load
from repro.models import make_model
from repro.parallel import hogwild_train
from repro.sgd import SGDConfig
from repro.sgd.averaging import AveragingSchedule, train_model_averaging
from repro.utils import derive_rng

from conftest import publish

EPOCHS = 10
STEP = 1.0


@pytest.fixture(scope="module")
def setup():
    ds = load("news", "small")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(0, "bench-strategies"))
    return model, ds, init


@pytest.fixture(scope="module")
def losses(setup):
    model, ds, init = setup
    out = {}

    w = init.copy()
    rng = derive_rng(0, "s-serial")
    for _ in range(EPOCHS):
        run_async_epoch(model, ds.X, ds.y, w, STEP, AsyncSchedule(concurrency=1), rng)
    out["serial"] = model.loss(ds.X, ds.y, w)

    w = init.copy()
    rng = derive_rng(0, "s-hogwild")
    for _ in range(EPOCHS):
        run_async_epoch(model, ds.X, ds.y, w, STEP, AsyncSchedule(concurrency=56), rng)
    out["hogwild-56"] = model.loss(ds.X, ds.y, w)

    w = init.copy()
    rng = derive_rng(0, "s-cyclades")
    eff = 1.0
    for _ in range(EPOCHS):
        eff = run_cyclades_epoch(
            model, ds.X, ds.y, w, STEP,
            CycladesSchedule(batch_size=256, workers=56), rng,
        )
    out["cyclades"] = model.loss(ds.X, ds.y, w)
    out["cyclades_efficiency"] = eff

    res = train_model_averaging(
        model, ds.X, ds.y, init,
        SGDConfig(step_size=STEP, max_epochs=EPOCHS),
        AveragingSchedule(workers=8),
    )
    out["averaging-8"] = res.curve.final_loss
    return out


class TestStrategyQuality:
    def test_publish(self, losses, artifact_dir):
        lines = [f"{k:>22}: {v:.4f}" for k, v in losses.items()]
        publish(artifact_dir, "strategies.txt", "\n".join(lines))

    def test_all_strategies_learn(self, setup, losses):
        model, ds, init = setup
        initial = model.loss(ds.X, ds.y, init)
        for key in ("serial", "hogwild-56", "cyclades", "averaging-8"):
            assert losses[key] < 0.65 * initial, key

    def test_hogwild_close_to_serial_on_sparse(self, losses):
        """Hogwild's headline property [27]: on sparse data the lock-free
        run matches serial statistical efficiency closely."""
        assert losses["hogwild-56"] <= losses["serial"] * 1.3 + 0.02

    def test_cyclades_serially_equivalent_quality(self, losses):
        """Cyclades is *exactly* serial-equivalent in distribution; its
        loss must sit with the serial family."""
        assert abs(losses["cyclades"] - losses["serial"]) < 0.1 * losses["serial"] + 0.02

    def test_cyclades_degenerates_on_text(self, losses):
        """An honest negative result: even news20-sparsity text has hot
        words that weld every batch into one conflict component, so the
        schedule's parallel efficiency collapses — Cyclades pays off on
        bounded-degree workloads (see the MF test below), not tf-idf."""
        assert losses["cyclades_efficiency"] < 0.25

    def test_cyclades_pays_on_bounded_degree_mf(self):
        """The Cyclades paper's own domain: matrix factorisation, where
        an update touches exactly one user and one item factor and the
        conflict graph genuinely shatters."""
        from repro.asyncsim import schedule_batch
        from repro.datasets import generate_ratings

        data = generate_ratings(
            n_users=2000, n_items=1500, n_ratings=10_000, zipf_exponent=0.7, seed=2
        )
        rows = np.arange(256)
        batch = schedule_batch(data.X, rows)
        assert batch.parallel_efficiency(56) > 0.25

    def test_averaging_statistically_weaker(self, losses):
        """The classic averaging penalty: replicas over partitions lag
        the shared-model strategies after equal epochs."""
        assert losses["averaging-8"] >= losses["hogwild-56"] - 1e-9


class TestRealHogwildBenchmark:
    def test_benchmark_real_processes(self, benchmark, setup):
        model, ds, init = setup
        report = benchmark.pedantic(
            hogwild_train,
            args=(model, ds.X, ds.y, init),
            kwargs=dict(step=STEP, epochs=4, workers=2),
            rounds=1,
            iterations=1,
        )
        assert report.improved

    def test_benchmark_cyclades_scheduling(self, benchmark, setup):
        from repro.asyncsim import schedule_batch

        _, ds, _ = setup
        rows = np.arange(512)
        batch = benchmark(schedule_batch, ds.X, rows)
        assert batch.n_examples == 512
