"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper at the
``small`` scale and print them (also writing them under
``benchmarks/artifacts/``).  A single session-scoped
:class:`ExperimentContext` is shared across modules so the training
runs behind Table II, Table III, Fig. 7 and Figs. 8/9 are performed
once.  Reference losses are cached on disk under ``.repro_cache`` so
repeat benchmark runs skip the budgeted reference sweeps.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"

os.environ.setdefault(
    "REPRO_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".repro_cache")
)


@pytest.fixture(scope="session")
def ctx():
    """The benchmark-scale experiment context (paper grid, small data)."""
    from repro.experiments import ExperimentContext

    return ExperimentContext(scale="small", sync_max_epochs=3000, async_max_epochs=950)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def publish(artifact_dir: Path, name: str, text: str) -> None:
    """Print a rendered table/figure and persist it."""
    print("\n" + text + "\n")
    (artifact_dir / name).write_text(text + "\n", encoding="utf-8")
