"""Benchmark + regeneration of Table II (synchronous SGD performance).

Regenerates the full table (3 tasks x 5 datasets x 3 architectures),
asserts the paper's qualitative shapes, and benchmarks the synchronous
epoch primitives on both dense and sparse data.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.datasets import load
from repro.experiments import run_table2
from repro.models import make_model
from repro.utils import derive_rng

from conftest import publish


@pytest.fixture(scope="module")
def table2(ctx):
    return run_table2(ctx)


class TestTable2Shapes:
    def test_render_and_publish(self, table2, artifact_dir):
        publish(artifact_dir, "table2.txt", table2.render())
        assert len(table2.rows) == 15

    def test_all_configurations_converge(self, table2):
        """Table II has no infinity entries: every synchronous
        configuration reaches the 1% band."""
        non_conv = [
            (r.task, r.dataset) for r in table2.rows if not math.isfinite(r.epochs)
        ]
        assert len(non_conv) <= 2, f"non-convergent sync cells: {non_conv}"

    def test_gpu_always_beats_parallel_cpu(self, table2):
        """Paper: 'GPU is always faster than parallel CPU in time per
        iteration and, thus, in time to convergence.'"""
        assert table2.gpu_always_fastest()

    def test_parallel_always_beats_sequential(self, table2):
        assert table2.parallel_always_helps()

    def test_lr_svm_gap_grows_with_sparsity(self, table2):
        """Paper: the par/gpu gap increases with sparsity — the sparsest
        datasets show a larger GPU advantage than dense covtype."""
        for task in ("lr", "svm"):
            dense_gap = table2.row(task, "covtype").speedup_par_over_gpu
            sparse_gaps = [
                table2.row(task, d).speedup_par_over_gpu for d in ("rcv1", "news")
            ]
            assert max(sparse_gaps) > dense_gap

    def test_mlp_cpu_speedup_near_two(self, table2):
        """Paper: ViennaCL's GEMM threshold caps MLP parallel speedup
        around 2x (1.94-2.89 in Table II)."""
        assert table2.mlp_speedup_band(lo=1.5, hi=3.5)

    def test_mlp_gpu_speedup_band(self, table2):
        """Paper: MLP par/gpu speedup is 4.08-6.69; ours must land in a
        comparable 2.5-8x band."""
        for r in table2.rows:
            if r.task == "mlp":
                assert 2.5 <= r.speedup_par_over_gpu <= 8.0, (r.dataset, r.speedup_par_over_gpu)

    def test_lr_svm_large_parallel_speedups(self, table2):
        """Paper: cpu-seq/cpu-par reaches 42-428x for LR/SVM; our band
        is 8-400x with w8a (cache-resident) near the top."""
        for task in ("lr", "svm"):
            speedups = {
                d: table2.row(task, d).speedup_seq_over_par
                for d in ("covtype", "w8a", "real-sim", "rcv1", "news")
            }
            assert all(s > 8.0 for s in speedups.values()), speedups
            assert speedups["w8a"] >= max(speedups["covtype"], speedups["rcv1"]) * 0.9


class TestSyncEpochBenchmarks:
    def test_benchmark_dense_epoch(self, benchmark):
        ds = load("covtype", "small")
        model = make_model("lr", ds)
        w = model.init_params(derive_rng(0, "b"))

        def epoch():
            return model.full_grad(ds.X, ds.y, w)

        g = benchmark(epoch)
        assert np.all(np.isfinite(g))

    def test_benchmark_sparse_epoch(self, benchmark):
        ds = load("rcv1", "small")
        model = make_model("lr", ds)
        w = model.init_params(derive_rng(0, "b"))
        g = benchmark(model.full_grad, ds.X, ds.y, w)
        assert np.all(np.isfinite(g))

    def test_benchmark_trace_costing(self, benchmark, ctx):
        """Hardware-model evaluation speed (one epoch trace, 3 backends)."""
        from repro.linalg import recording
        from repro.sgd.runner import full_scale_factor, working_set_bytes

        ds = load("rcv1", "small")
        model = make_model("lr", ds)
        w = model.init_params(derive_rng(0, "b"))
        with recording() as tr:
            model.full_grad(ds.X, ds.y, w)
        trace = tr.scaled(full_scale_factor(ds, "lr"))
        ws = working_set_bytes(ds, model, "lr")

        def cost():
            return (
                ctx.cpu.sync_epoch_time(trace, 1, ws)
                + ctx.cpu.sync_epoch_time(trace, 56, ws)
                + ctx.gpu.sync_epoch_time(trace)
            )

        assert benchmark(cost) > 0
