"""Benchmark + regeneration of Table III (asynchronous SGD performance).

Regenerates the full asynchronous table — per-architecture statistical
efficiency is *measured* through the interleaving simulator — asserts
the paper's asynchronous findings, and benchmarks the Hogwild epoch
primitives.
"""

from __future__ import annotations

import pytest

from repro.asyncsim import AsyncSchedule, run_async_epoch
from repro.datasets import load
from repro.experiments import run_table3
from repro.models import make_model
from repro.utils import derive_rng

from conftest import publish


@pytest.fixture(scope="module")
def table3(ctx):
    return run_table3(ctx)


class TestTable3Shapes:
    def test_render_and_publish(self, table3, artifact_dir):
        publish(artifact_dir, "table3.txt", table3.render())
        assert len(table3.rows) == 15

    def test_cpu_wins_time_to_convergence_on_large_sparse(self, table3):
        """Paper headline: 'Asynchronous SGD on CPU always outperforms
        GPU in time to convergence.'  At reduced scale the simulated
        staleness cannot reach the paper's absolute in-flight window on
        the two smallest datasets (covtype, w8a), so GPU wins are
        tolerated there — and only there.  (The paper itself has one
        exception: w8a MLP.)"""
        gpu_wins = table3.gpu_wins_only_on_small_dense()
        assert all(ds in ("covtype", "w8a") for _task, ds in gpu_wins), gpu_wins
        for task in ("lr", "svm", "mlp"):
            for ds in ("real-sim", "rcv1", "news"):
                assert (task, ds) not in gpu_wins

    def test_covtype_parallel_slower_per_iteration(self, table3):
        """Paper: coherence storms make parallel Hogwild slower than
        sequential per iteration on fully dense data."""
        assert table3.dense_parallel_slower_per_iter()

    def test_sparse_parallel_faster_per_iteration(self, table3):
        """Paper: 2.5-6x parallel speedup on the sparse datasets."""
        for task in ("lr", "svm"):
            for d in ("real-sim", "rcv1", "news"):
                assert table3.row(task, d).speedup_seq_over_par > 1.5, (task, d)

    def test_gpu_iterates_faster_on_dense_slower_on_sparse(self, table3):
        """Paper: gpu/cpu-par per-iteration ratio is 0.06-0.19 on
        covtype but 5.6-7.5 on news."""
        for task in ("lr", "svm"):
            assert table3.row(task, "covtype").ratio_gpu_over_par < 0.5
            assert table3.row(task, "news").ratio_gpu_over_par > 2.0

    def test_statistical_efficiency_degrades_with_concurrency(self, table3):
        """More concurrency -> staler reads -> more epochs (or outright
        divergence), on most cells."""
        ok = total = 0
        for r in table3.rows:
            if r.task == "mlp":
                continue
            total += 1
            if r.epochs_gpu >= r.epochs_cpu_seq * 0.9:
                ok += 1
        assert ok >= 0.7 * total

    def test_mlp_hogbatch_parallel_speedup(self, table3):
        """Paper: Hogbatch parallel CPU is 15-23x faster per iteration
        than sequential mini-batch; our band is >= 8x."""
        assert table3.mlp_parallel_speedup_band(lo=8.0)

    def test_mlp_gpu_slower_per_iteration_than_parallel_cpu(self, table3):
        """Paper: 'parallel CPU always outperforms GPU in time per
        iteration—by 6X or more' for MLP."""
        for r in table3.rows:
            if r.task == "mlp":
                assert r.ratio_gpu_over_par > 2.0, (r.dataset, r.ratio_gpu_over_par)


class TestAsyncEpochBenchmarks:
    def test_benchmark_serial_hogwild_epoch(self, benchmark):
        ds = load("w8a", "small")
        model = make_model("lr", ds)
        w = model.init_params(derive_rng(0, "b"))
        rng = derive_rng(0, "bench")
        schedule = AsyncSchedule(concurrency=1)
        benchmark(run_async_epoch, model, ds.X, ds.y, w, 0.5, schedule, rng)

    def test_benchmark_parallel_hogwild_epoch(self, benchmark):
        ds = load("w8a", "small")
        model = make_model("lr", ds)
        w = model.init_params(derive_rng(0, "b"))
        rng = derive_rng(0, "bench")
        schedule = AsyncSchedule(concurrency=56)
        benchmark(run_async_epoch, model, ds.X, ds.y, w, 0.5, schedule, rng)

    def test_benchmark_async_workload_costing(self, benchmark, ctx):
        from repro.hardware import AsyncWorkload

        ds = load("news", "small")
        model = make_model("lr", ds)
        workload = AsyncWorkload.for_linear(ds, model)

        def cost():
            return (
                ctx.cpu.async_epoch_time(workload, 1)
                + ctx.cpu.async_epoch_time(workload, 56)
                + ctx.gpu.async_epoch_time(workload)
            )

        assert benchmark(cost) > 0
