"""Benchmark + regeneration of Table I (the experimental datasets).

Regenerates the paper's dataset table at benchmark scale, asserts the
realised statistics stay within band of the profiles, and benchmarks
the synthetic generator (the substrate every other experiment relies
on).
"""

from __future__ import annotations

import pytest

from repro.datasets import generate
from repro.datasets.registry import scaled_profile
from repro.experiments import run_table1

from conftest import publish


@pytest.fixture(scope="module")
def table1_result(ctx):
    return run_table1(ctx)


class TestTable1:
    def test_render_and_publish(self, table1_result, artifact_dir):
        publish(artifact_dir, "table1.txt", table1_result.render())
        assert "covtype" in table1_result.rendered

    def test_statistics_within_band(self, table1_result):
        for check in table1_result.checks:
            assert check.sparsity_ok, (
                f"{check.dataset}: realised sparsity "
                f"{check.realised_sparsity_pct:.3f}% vs target "
                f"{check.target_sparsity_pct:.3f}%"
            )
            assert check.balanced, f"{check.dataset}: labels imbalanced"

    def test_dispersion_preserved(self, table1_result):
        """The max/avg nnz dispersion drives GPU divergence — verify
        the heavy-tailed datasets keep a large ratio."""
        by_name = {c.dataset: c for c in table1_result.checks}
        assert by_name["news"].realised_dispersion > 5.0
        assert by_name["covtype"].realised_dispersion == pytest.approx(1.0)


def test_benchmark_sparse_generation(benchmark):
    """Generator throughput at benchmark scale (news: the widest set)."""
    profile = scaled_profile("news", "small")
    out = benchmark(generate, profile, 123)
    assert out.n_examples == profile.n_examples


def test_benchmark_dense_generation(benchmark):
    profile = scaled_profile("covtype", "small")
    out = benchmark(generate, profile, 123)
    assert not out.is_sparse
