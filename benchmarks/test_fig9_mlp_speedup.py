"""Benchmark + regeneration of Fig. 9 (MLP GPU speedup vs TensorFlow).

Reproduces the paper's deep-net hardware-efficiency comparison: our
synchronous/asynchronous (Hogbatch) implementations against a
TensorFlow-like executor.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig9

from conftest import publish


@pytest.fixture(scope="module")
def fig9(ctx):
    return run_fig9(ctx)


class TestFig9Shapes:
    def test_render_and_publish(self, fig9, artifact_dir):
        publish(artifact_dir, "fig9.txt", fig9.render())
        assert {"ours-sync", "ours-async", "tensorflow"} <= set(fig9.systems())

    def test_superior_gpu_speedup_vs_tensorflow(self, fig9):
        """Paper: 'In this case, we always obtain a superior GPU
        speedup' (because TF's Eigen CPU kernels parallelise the small
        GEMMs ViennaCL serialises, shrinking TF's ratio)."""
        for dataset in ("covtype", "w8a", "real-sim", "rcv1", "news"):
            ours = fig9.get("mlp", dataset, "ours-sync")
            tf = fig9.get("mlp", dataset, "tensorflow")
            assert ours > tf, (dataset, ours, tf)

    def test_sync_speedups_in_paper_band(self, fig9):
        """Paper Table II: MLP par/gpu between ~4.1 and ~6.7x; our band
        2.5-8x."""
        for dataset in ("covtype", "w8a", "real-sim", "rcv1", "news"):
            s = fig9.get("mlp", dataset, "ours-sync")
            assert 2.5 <= s <= 8.0, (dataset, s)

    def test_hogbatch_gpu_below_one(self, fig9):
        """Paper: parallel CPU beats the GPU per iteration for Hogbatch
        by 6x or more — the async series sits well below 1."""
        for dataset in ("covtype", "w8a", "real-sim", "rcv1", "news"):
            assert fig9.get("mlp", dataset, "ours-async") < 0.6, dataset


def test_benchmark_fig9(benchmark, ctx):
    result = benchmark.pedantic(run_fig9, args=(ctx,), rounds=1, iterations=1)
    assert len(result.entries) == 5 * 3
