"""Benchmark + regeneration of Fig. 7 (sync-GPU vs async-CPU head-to-head).

Reproduces the paper's 15-panel loss-vs-time comparison between the two
optimal configurations and its conclusion that the winner is task- and
dataset-dependent ("we do not expect a single winner all the time").
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import run_fig7

from conftest import publish


@pytest.fixture(scope="module")
def fig7(ctx):
    return run_fig7(ctx)


class TestFig7Shapes:
    def test_render_and_publish(self, fig7, artifact_dir):
        text = fig7.render()
        panels = "\n\n".join(p.render() for p in fig7.panels[:6])
        publish(artifact_dir, "fig7.txt", text + "\n\n" + panels)
        assert len(fig7.panels) == 15

    def test_no_winner_dominates(self, fig7):
        """The paper's core Fig. 7 message: both strategies win on some
        dataset/task pairs."""
        assert fig7.winner_is_task_dataset_dependent()

    def test_most_panels_have_a_winner(self, fig7):
        decided = [p for p in fig7.panels if p.winner != "none"]
        assert len(decided) >= 12

    def test_curves_share_initial_loss(self, fig7):
        for p in fig7.panels:
            assert p.sync_gpu.curve.initial_loss == pytest.approx(
                p.async_cpu.curve.initial_loss
            )

    def test_async_side_is_optimal_cpu(self, fig7, ctx):
        """The async side of each panel is the better of cpu-seq and
        cpu-par at the context tolerance."""
        for p in fig7.panels[:5]:
            other_arch = (
                "cpu-par" if p.async_cpu.architecture == "cpu-seq" else "cpu-seq"
            )
            other = ctx.run(p.task, p.dataset, other_arch, "asynchronous")
            assert p.async_cpu.time_to(ctx.tolerance) <= other.time_to(ctx.tolerance)


def test_benchmark_loss_curve_extraction(benchmark, fig7):
    """Speed of producing the plot series from the stored results."""

    def extract():
        total = 0.0
        for p in fig7.panels:
            xs, ys = p.sync_gpu.loss_vs_time()
            total += float(xs[-1]) + float(ys[-1])
        return total

    assert math.isfinite(benchmark(extract))
