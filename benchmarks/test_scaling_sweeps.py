"""Benchmark: thread-scalability sweeps (extended-report material).

The paper prints only the sequential and 56-thread endpoints; its
extended version and DimmWitted [40] study the full curve.  This module
publishes speedup-vs-threads for the characteristic regimes and asserts
their shapes: monotone synchronous scaling (super-linear in the
cache-resident regime), asynchronous collapse on dense data, and the
asynchronous saturation plateau on sparse data.
"""

from __future__ import annotations

import pytest

from repro.datasets import load
from repro.hardware import AsyncWorkload, CpuModel, async_scaling, sync_scaling
from repro.linalg import recording
from repro.models import make_model
from repro.sgd.runner import full_scale_factor, working_set_bytes
from repro.utils import derive_rng, render_bar_chart

from conftest import publish


@pytest.fixture(scope="module")
def curves():
    cpu = CpuModel()
    out = {}
    for name in ("covtype", "w8a", "rcv1", "news"):
        ds = load(name, "small")
        model = make_model("lr", ds)
        w = model.init_params(derive_rng(0, "scaling"))
        with recording() as tr:
            model.full_grad(ds.X, ds.y, w)
        trace = tr.scaled(full_scale_factor(ds, "lr"))
        ws = working_set_bytes(ds, model, "lr")
        out[("sync", name)] = sync_scaling(cpu, trace, ws, label=f"sync/{name}")
        workload = AsyncWorkload.for_linear(ds, model)
        out[("async", name)] = async_scaling(cpu, workload, label=f"async/{name}")
    return out


class TestScalingShapes:
    def test_publish(self, curves, artifact_dir):
        charts = []
        for curve in curves.values():
            charts.append(
                render_bar_chart(
                    [f"{p.threads:>2} thr" for p in curve.points],
                    [p.speedup for p in curve.points],
                    title=f"{curve.label}: speedup vs threads",
                    unit="x",
                )
            )
        publish(artifact_dir, "scaling_sweeps.txt", "\n\n".join(charts))

    def test_sync_monotone_everywhere(self, curves):
        for (kind, name), curve in curves.items():
            if kind != "sync":
                continue
            speedups = [p.speedup for p in curve.points]
            assert speedups == sorted(speedups), name

    def test_cache_resident_superlinear_region(self, curves):
        assert curves[("sync", "w8a")].superlinear

    def test_dram_bound_not_superlinear(self, curves):
        assert not curves[("sync", "rcv1")].superlinear

    def test_async_dense_collapses(self, curves):
        assert curves[("async", "covtype")].scaling_collapses

    def test_async_sparse_saturates_below_linear(self, curves):
        curve = curves[("async", "news")]
        assert not curve.scaling_collapses
        assert 2.0 < curve.peak_speedup < 56.0

    def test_hyperthreads_add_little_compute(self, curves):
        """Beyond the 28 physical cores, synchronous compute-bound
        speedup must flatten (SMT shares execution units)."""
        curve = curves[("sync", "covtype")]
        by_threads = {p.threads: p.speedup for p in curve.points}
        gain_smt = by_threads[56] / by_threads[28]
        gain_phys = by_threads[28] / by_threads[14]
        assert gain_smt < gain_phys
