"""Benchmark: heterogeneous CPU+GPU execution (the paper's future work).

Maps the synchronous-epoch benefit of pairing the two machines across
every (task, dataset), answering the question the paper's conclusions
pose.  Shape assertions encode the model's analytical bounds and the
qualitative answer: pairing pays where the devices are close, and the
benefit can never exceed 2x.
"""

from __future__ import annotations

import pytest

from repro.datasets import load, load_mlp
from repro.hardware import HeteroModel
from repro.linalg import recording
from repro.models import make_model
from repro.sgd.runner import full_scale_factor, working_set_bytes
from repro.utils import derive_rng
from repro.utils.tables import render_table

from conftest import publish


@pytest.fixture(scope="module")
def sweep():
    hetero = HeteroModel()
    rows = []
    values = {}
    for task in ("lr", "svm", "mlp"):
        loader = load_mlp if task == "mlp" else load
        for name in ("covtype", "w8a", "real-sim", "rcv1", "news"):
            ds = loader(name, "small")
            model = make_model(task, ds)
            w = model.init_params(derive_rng(0, "hetero-bench"))
            with recording() as tr:
                model.full_grad(ds.X, ds.y, w)
            trace = tr.scaled(full_scale_factor(ds, task))
            ws = working_set_bytes(ds, model, task)
            mb = model.n_params * 8
            cpu_t = hetero.cpu.sync_epoch_time(trace, 56, ws)
            gpu_t = hetero.gpu.sync_epoch_time(trace)
            pair_t = hetero.sync_epoch_time(trace, ws, mb)
            speedup = hetero.speedup_over_best_single(trace, ws, mb)
            values[(task, name)] = speedup
            rows.append(
                [task, name, cpu_t * 1e3, gpu_t * 1e3, pair_t * 1e3, speedup]
            )
    table = render_table(
        ["task", "dataset", "cpu-par (ms)", "gpu (ms)", "cpu+gpu (ms)", "gain vs best"],
        rows,
        title="Future work: heterogeneous CPU+GPU synchronous epochs",
    )
    return table, values


class TestHeteroSweep:
    def test_publish(self, sweep, artifact_dir):
        table, _ = sweep
        publish(artifact_dir, "hetero_future_work.txt", table)

    def test_all_gains_within_analytical_bounds(self, sweep):
        _, values = sweep
        for key, s in values.items():
            assert 0.9 <= s <= 2.0 + 1e-9, (key, s)

    def test_pairing_pays_somewhere(self, sweep):
        """At least half the cells gain >20% — the future-work direction
        is worthwhile on this hardware pair."""
        _, values = sweep
        winners = [k for k, s in values.items() if s > 1.2]
        assert len(winners) >= len(values) // 2

    def test_close_devices_gain_most(self, sweep):
        """covtype LR (the smallest Table II gap) must be among the
        larger gains."""
        _, values = sweep
        covtype_lr = values[("lr", "covtype")]
        assert covtype_lr > 1.5
