"""Benchmark + regeneration of Fig. 6 (MLP architecture speedup sweep).

Reproduces the paper's finding that the synchronous parallel-CPU
speedup on real-sim grows from ~2x (Table I architecture, all
weight-gradient GEMMs below ViennaCL's parallelisation threshold) to
tens of x for very wide nets, while the GPU-over-parallel-CPU ratio
stays comparatively flat.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig6

from conftest import publish


@pytest.fixture(scope="module")
def fig6(ctx):
    return run_fig6(ctx)


class TestFig6Shapes:
    def test_render_and_publish(self, fig6, artifact_dir):
        publish(artifact_dir, "fig6.txt", fig6.render())
        assert len(fig6.points) >= 5

    def test_small_net_speedup_near_two(self, fig6):
        """The 50-10-5-2 net must sit near the paper's ~2x."""
        assert fig6.small_net_speedup_near_two()

    def test_speedup_grows_with_width(self, fig6):
        """Paper: 'as we increase the size of the deep net, the speedup
        increases to as much as 26X for a very large net.'"""
        assert fig6.speedup_grows_with_width()
        assert fig6.points[-1].speedup_par_over_seq > 15.0

    def test_speedup_never_reaches_thread_count(self, fig6):
        """Paper: 'the reason this is still smaller than 56X is because
        the input layer cannot be parallelized.'"""
        assert all(p.speedup_par_over_seq < 56.0 for p in fig6.points)

    def test_gpu_ratio_flat_for_wide_nets(self, fig6):
        """Paper: 'the GPU speedup over parallel CPU is almost
        constant.'  Once the hidden layers are wide enough that the
        GEMMs dominate (>= 200 units), the GPU ratio must be nearly
        flat even as the CPU series keeps climbing."""
        wide = [p for p in fig6.points if p.arch[1] >= 200]
        assert len(wide) >= 3
        gpu = [p.speedup_gpu_over_par for p in wide]
        assert max(gpu) / min(gpu) < 1.3
        cpu = [p.speedup_par_over_seq for p in wide]
        assert cpu == sorted(cpu)


def test_benchmark_fig6_sweep(benchmark, ctx):
    """End-to-end cost of the (trace, cost-model) sweep itself."""
    result = benchmark.pedantic(
        run_fig6, args=(ctx,), kwargs={"architectures": ((50, 10, 5, 2), (50, 200, 100, 2))},
        rounds=1, iterations=1,
    )
    assert len(result.points) == 2
