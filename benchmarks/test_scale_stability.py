"""Benchmark: shape stability across dataset scales.

The entire reproduction methodology rests on statistical efficiency
transferring across scales (DESIGN.md section 2).  This module spot
checks it: epochs-to-tolerance and the key hardware ratios for
representative configurations must agree within a modest factor between
the `small` and `medium` scales.
"""

from __future__ import annotations

import pytest

from repro.sgd import train


def _epochs(scale, task, dataset, architecture, strategy, step, epochs_cap):
    run = train(
        task, dataset, architecture=architecture, strategy=strategy,
        scale=scale, step_size=step, max_epochs=epochs_cap,
        early_stop_tolerance=0.05,
    )
    return run.epochs_to(0.05), run.time_per_iter


@pytest.mark.parametrize(
    "task,dataset,architecture,strategy,step,cap",
    [
        ("lr", "w8a", "cpu-seq", "asynchronous", 1.0, 150),
        ("lr", "w8a", "gpu", "synchronous", 300.0, 800),
        ("svm", "real-sim", "cpu-par", "asynchronous", 1.0, 150),
    ],
)
def test_epochs_stable_across_scales(task, dataset, architecture, strategy, step, cap):
    e_small, tpi_small = _epochs("small", task, dataset, architecture, strategy, step, cap)
    e_medium, tpi_medium = _epochs("medium", task, dataset, architecture, strategy, step, cap)
    assert e_small is not None and e_medium is not None
    ratio = max(e_small, e_medium) / max(1, min(e_small, e_medium))
    assert ratio < 3.0, (e_small, e_medium)
    # hardware times are modelled at paper scale: identical inputs give
    # close outputs regardless of the realised data's size
    assert tpi_medium == pytest.approx(tpi_small, rel=0.5)
