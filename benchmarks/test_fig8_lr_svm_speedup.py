"""Benchmark + regeneration of Fig. 8 (LR/SVM GPU speedup vs BIDMach).

Reproduces the paper's hardware-efficiency comparison: the GPU-over-
parallel-CPU speedup of our synchronous and asynchronous
implementations against a BIDMach-like executor, per dataset.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig8

from conftest import publish


@pytest.fixture(scope="module")
def fig8(ctx):
    return run_fig8(ctx)


class TestFig8Shapes:
    def test_render_and_publish(self, fig8, artifact_dir):
        publish(artifact_dir, "fig8.txt", fig8.render())
        assert {"ours-sync", "ours-async", "bidmach"} <= set(fig8.systems())

    def test_ours_not_dominated_by_bidmach(self, fig8):
        """Paper: 'our implementations provide similar or better speedup
        than BIDMach for LR and SVM on sparse data.'"""
        assert fig8.ours_not_dominated()

    def test_bidmach_collapses_on_sparse_data(self, fig8):
        """BIDMach's dense-optimised GPU kernels lose their edge as
        sparsity grows: its speedup on news must trail ours clearly."""
        for task in ("lr", "svm"):
            ours = fig8.get(task, "news", "ours-sync")
            bid = fig8.get(task, "news", "bidmach")
            assert ours > 1.2 * bid

    def test_dense_data_comparable(self, fig8):
        """On fully dense covtype the two systems are close."""
        for task in ("lr", "svm"):
            ours = fig8.get(task, "covtype", "ours-sync")
            bid = fig8.get(task, "covtype", "bidmach")
            assert 0.5 < ours / bid < 2.5

    def test_async_gpu_loses_on_sparse(self, fig8):
        """The asynchronous speedup series dips below 1 on the sparse
        datasets (the GPU Hogwild kernel is slower per epoch there)."""
        assert fig8.get("lr", "news", "ours-async") < 1.0
        assert fig8.get("lr", "covtype", "ours-async") > 1.0


def test_benchmark_fig8(benchmark, ctx):
    result = benchmark.pedantic(run_fig8, args=(ctx,), rounds=1, iterations=1)
    assert len(result.entries) == 2 * 5 * 3  # tasks x datasets x systems
