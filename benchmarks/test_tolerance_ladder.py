"""Benchmark: the 10/5/2/1% tolerance ladder (Section IV-A protocol).

Regenerates the full ladder for representative (task, dataset) pairs
and checks the Bertsekas structure the paper builds its Section III on:
incremental SGD leads at loose tolerances; whether batch GD overtakes
by 1% is task/dataset-dependent (the Fig. 7 message, resolved per
ladder step).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import run_tolerance_ladder

from conftest import publish


@pytest.fixture(scope="module")
def ladders(ctx):
    return {
        (task, ds): run_tolerance_ladder(task, ds, ctx)
        for task, ds in (("lr", "covtype"), ("lr", "rcv1"), ("svm", "news"))
    }


class TestLadders:
    def test_publish(self, ladders, artifact_dir):
        text = "\n\n".join(lad.render() for lad in ladders.values())
        publish(artifact_dir, "tolerance_ladder.txt", text)

    def test_monotone_everywhere(self, ladders):
        for key, lad in ladders.items():
            assert lad.times_monotone_in_tolerance(), key

    def test_async_leads_loose_tolerances(self, ladders):
        """Far from the optimum, incremental SGD dominates (Section III:
        'convergence rate as much as N times faster ... when far from
        the minimum'): the 10% winner is asynchronous on every panel."""
        for key, lad in ladders.items():
            assert lad.winner_at(0.10).strategy == "asynchronous", key

    def test_every_tolerance_reachable_by_someone(self, ladders):
        for key, lad in ladders.items():
            for tol in (0.10, 0.05, 0.02, 0.01):
                win = lad.winner_at(tol)
                assert math.isfinite(win.time_at(tol)), (key, tol)

    def test_crossover_reporting_consistent(self, ladders):
        """crossover() agrees with the per-step winners it summarises."""
        for lad in ladders.values():
            cross = lad.crossover()
            if cross is None:
                winners = {
                    lad.winner_at(t).label for t in (0.10, 0.05, 0.02, 0.01)
                }
                assert len(winners) == 1
            else:
                tol, prev, new = cross
                assert prev != new
                assert lad.winner_at(tol).label == new
