"""Four ways to parallelise SGD: Hogwild, Cyclades, averaging, for real.

The paper's related work (Section V) maps the design space around
Hogwild; this example runs the alternatives side by side on one sparse
dataset, all through this library:

* **Hogwild** (simulated, 56 threads) — lock-free shared model, stale
  reads [27];
* **Cyclades** (conflict-free scheduling) — graph-partitioned batches,
  serially-equivalent updates [39];
* **model averaging** — independent replicas, periodic averaging [42];
* **real Hogwild** — actual lock-free processes over shared memory
  (non-deterministic; the genuine article).

Run:  python examples/parallel_strategies.py
"""

from __future__ import annotations

# Allow running straight from a source checkout: put the repo's src/
# tree on sys.path when the package is not installed.
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import time

from repro.asyncsim import (
    AsyncSchedule,
    CycladesSchedule,
    run_async_epoch,
    run_cyclades_epoch,
)
from repro.datasets import load
from repro.models import make_model
from repro.parallel import hogwild_train
from repro.sgd import SGDConfig
from repro.sgd.averaging import AveragingSchedule, train_model_averaging
from repro.utils import derive_rng, render_table

EPOCHS = 12
STEP = 1.0


def main() -> None:
    ds = load("w8a", "small")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(0, "strategies"))
    rows = []

    # Hogwild (simulated at 56-thread concurrency)
    w = init.copy()
    rng = derive_rng(0, "hogwild")
    t0 = time.perf_counter()
    for _ in range(EPOCHS):
        run_async_epoch(model, ds.X, ds.y, w, STEP, AsyncSchedule(concurrency=56), rng)
    rows.append(["hogwild (simulated, C=56)", model.loss(ds.X, ds.y, w),
                 time.perf_counter() - t0])

    # Cyclades: conflict-free groups, serially equivalent
    w = init.copy()
    rng = derive_rng(0, "cyclades")
    t0 = time.perf_counter()
    eff = 0.0
    for _ in range(EPOCHS):
        eff = run_cyclades_epoch(
            model, ds.X, ds.y, w, STEP, CycladesSchedule(batch_size=256, workers=56), rng
        )
    rows.append([f"cyclades (parallel eff {eff:.2f})", model.loss(ds.X, ds.y, w),
                 time.perf_counter() - t0])

    # Model averaging, 8 replicas
    t0 = time.perf_counter()
    avg = train_model_averaging(
        model, ds.X, ds.y, init,
        SGDConfig(step_size=STEP, max_epochs=EPOCHS),
        AveragingSchedule(workers=8),
    )
    rows.append(["model averaging (8 replicas)", avg.curve.final_loss,
                 time.perf_counter() - t0])

    # Real lock-free Hogwild over shared memory
    report = hogwild_train(
        model, ds.X, ds.y, init, step=STEP, epochs=EPOCHS, workers=4
    )
    rows.append(["hogwild (REAL, 4 processes)", report.final_loss, report.wall_time])

    print(f"LR on w8a-small, {EPOCHS} epochs at step {STEP}; "
          f"initial loss {model.loss(ds.X, ds.y, init):.4f}\n")
    print(render_table(
        ["strategy", "final loss", "wall time (s)"], rows,
        title="Parallelisation strategies compared", precision=4,
    ))
    print("\nReading guide: Cyclades matches serial statistical efficiency by")
    print("construction, but note its parallel efficiency on w8a: the hot")
    print("features weld each batch into one giant conflict component, so")
    print("conflict-free scheduling only pays on genuinely low-overlap data.")
    print("Hogwild's stale reads cost a little loss; averaging trades more")
    print("statistical efficiency for zero write sharing. The real-process")
    print("run is the same algorithm as the simulated Hogwild, with genuine")
    print("races instead of a deterministic schedule.")


if __name__ == "__main__":
    main()
