"""Bring your own data: train the paper's tasks on a LIBSVM file.

The reproduction generates synthetic datasets matched to Table I, but
every entry point also accepts real data in LIBSVM format — drop in the
actual covtype/w8a/real-sim/rcv1/news20 files to rerun the study on the
paper's corpora.  This example writes a small LIBSVM file (standing in
for a user's dataset), reads it back, and compares synchronous GPU
against asynchronous parallel-CPU training on it.

Run:  python examples/custom_dataset_libsvm.py [path/to/your.libsvm]
"""

from __future__ import annotations

# Allow running straight from a source checkout: put the repo's src/
# tree on sys.path when the package is not installed.
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import sys
import tempfile
from pathlib import Path

import repro
from repro.datasets import write_libsvm


def demo_file() -> Path:
    """Create a stand-in LIBSVM file from a generated dataset."""
    ds = repro.load("real-sim", "small")
    path = Path(tempfile.gettempdir()) / "repro_demo.libsvm"
    write_libsvm(ds, path)
    print(f"(no file supplied - wrote a demo dataset to {path})")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_file()
    data = repro.read_libsvm(path)
    print(f"loaded {data.name}: {data.n_examples} examples, "
          f"{data.n_features} features, "
          f"density {100 * data.density:.3f}%")

    for architecture, strategy, step in (
        ("gpu", "synchronous", 300.0),
        ("cpu-par", "asynchronous", 1.0),
    ):
        result = repro.train(
            "svm",
            data,
            architecture=architecture,
            strategy=strategy,
            step_size=step,
            max_epochs=400 if strategy == "synchronous" else 150,
        )
        epochs = result.epochs_to(0.05)
        ttc = result.time_to(0.05)
        print(f"{strategy:>12} on {architecture:>7}: "
              f"time/iter {result.time_per_iter * 1e3:8.2f} ms, "
              f"epochs to 5% {epochs if epochs is not None else 'inf':>5}, "
              f"time to 5% {ttc:8.3f} s")


if __name__ == "__main__":
    main()
