"""Quickstart: train one paper configuration and read all three axes.

The paper measures every configuration along three axes (its Fig. 2):
hardware efficiency (time per iteration), statistical efficiency
(epochs to a loss tolerance), and their product — time to convergence.
One `repro.train` call returns all three.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

# Allow running straight from a source checkout: put the repo's src/
# tree on sys.path when the package is not installed.
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import repro


def main() -> None:
    # Hogwild (asynchronous SGD, B=1) for logistic regression on a
    # synthetic dataset matched to w8a's Table I statistics, executed
    # on 56 logical CPU threads (the paper's NUMA machine).
    result = repro.train(
        task="lr",
        dataset="w8a",
        architecture="cpu-par",
        strategy="asynchronous",
        scale="small",
        step_size=1.0,
        max_epochs=200,
    )

    print(f"configuration : {result.task} / {result.dataset} / "
          f"{result.architecture} / {result.strategy}")
    print(f"step size     : {result.step_size}")
    print(f"initial loss  : {result.initial_loss:.4f}")
    print(f"optimal loss  : {result.optimal_loss:.4f}  (budgeted reference)")
    print(f"final loss    : {result.curve.final_loss:.4f}")
    print()
    print("hardware efficiency (modelled at paper scale):")
    print(f"  time per iteration = {result.time_per_iter * 1e3:.2f} ms")
    print()
    print("statistical efficiency / time to convergence:")
    for tol in repro.TOLERANCES:
        epochs = result.epochs_to(tol)
        time_s = result.time_to(tol)
        label = f"{int(tol * 100)}%"
        if epochs is None:
            print(f"  within {label:>3} of optimum: not reached")
        else:
            print(f"  within {label:>3} of optimum: {epochs:4d} epochs "
                  f"= {time_s:.3f} s")


if __name__ == "__main__":
    main()
