"""Matrix factorisation under Hogwild — the paper's future-work model.

The paper closes by naming matrix factorisation as the next workload to
study (Section VI), and its related work points out that the only GPU
Hogwild kernel in the literature is cuMF's MF kernel [38].  This
example trains a low-rank model on a synthetic popularity-skewed rating
set with the same asynchronous machinery as the paper's tasks, and
shows the familiar trade-off: staleness costs epochs, item popularity
drives the conflict statistics.

Run:  python examples/matrix_factorization.py
"""

from __future__ import annotations

# Allow running straight from a source checkout: put the repo's src/
# tree on sys.path when the package is not installed.
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.asyncsim import AsyncSchedule, run_async_epoch
from repro.datasets import generate_ratings
from repro.hardware import LineStats
from repro.models import MatrixFactorization
from repro.utils import derive_rng, render_table


def main() -> None:
    data = generate_ratings(
        n_users=600, n_items=400, n_ratings=12_000, rank=6, seed=0
    )
    model = MatrixFactorization(data.n_users, data.n_items, rank=6)
    init = model.init_params(derive_rng(0, "mf-example"))

    pop = data.item_popularity()
    print(f"ratings: {data.n_ratings} over {data.n_users}x{data.n_items} "
          f"(density {100 * data.density:.2f}%)")
    print(f"item popularity skew: hottest item has {pop.max()} ratings, "
          f"median {int(np.median(pop))} — the Hogwild conflict driver\n")

    rows = []
    for concurrency in (1, 56, 2048):
        params = init.copy()
        rng = derive_rng(0, f"mf/{concurrency}")
        rmse_5 = rmse_40 = None
        for epoch in range(1, 41):
            run_async_epoch(
                model, data.X, data.y, params, 0.05,
                AsyncSchedule(concurrency=concurrency), rng,
            )
            if epoch == 5:
                rmse_5 = model.rmse(data.X, data.y, params)
        rmse_40 = model.rmse(data.X, data.y, params)
        rows.append([concurrency, rmse_5, rmse_40])
    print(
        render_table(
            ["concurrency", "RMSE after 5 epochs", "RMSE after 40 epochs"],
            rows,
            title="Hogwild MF: staleness vs statistical efficiency",
            precision=4,
        )
    )

    # Conflict statistics from the realised item popularity, priced by
    # the same coherence machinery as the paper's tasks.
    freqs = pop / data.n_ratings  # fraction of updates touching each item
    stats = LineStats(np.clip(freqs * model.rank / 8.0 * 8, 0, 1))
    print(f"\ncoherence view: conflict fraction at 56 threads = "
          f"{stats.conflict_fraction(56):.3f}, hottest-line popularity = "
          f"{stats.max_frequency:.3f}")
    print("(compare: covtype's dense updates have conflict fraction 1.0 — "
          "MF sits between the paper's dense and sparse regimes)")


if __name__ == "__main__":
    main()
