"""MLP scaling study: reproduce Fig. 6 through the public API.

The paper's most counter-intuitive synchronous result is that parallel
CPU only doubles MLP throughput — ViennaCL refuses to parallelise
matrix products whose result is smaller than ~5000 elements, and every
weight-gradient product of a 50-10-5-2 net is far smaller.  Growing the
hidden layers pushes those products over the threshold and the speedup
climbs toward (but never reaches) the 56-thread count.

Run:  python examples/mlp_scaling_study.py
"""

from __future__ import annotations

# Allow running straight from a source checkout: put the repo's src/
# tree on sys.path when the package is not installed.
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import DEFAULT_ARCHITECTURES, ExperimentContext, run_fig6
from repro.utils import render_bar_chart


def main() -> None:
    ctx = ExperimentContext(scale="small")
    result = run_fig6(ctx, architectures=DEFAULT_ARCHITECTURES)
    print(result.render())
    print()
    print(
        render_bar_chart(
            [p.label for p in result.points],
            [p.speedup_gpu_over_par for p in result.points],
            title="gpu over cpu-par speedup (roughly flat once GEMMs dominate)",
            unit="x",
        )
    )
    small, large = result.points[0], result.points[-1]
    print()
    print(f"Table I architecture ({small.label}): parallel speedup "
          f"{small.speedup_par_over_seq:.1f}x — the paper's ~2x ceiling.")
    print(f"Largest architecture ({large.label}): parallel speedup "
          f"{large.speedup_par_over_seq:.1f}x — the threshold no longer binds.")


if __name__ == "__main__":
    main()
