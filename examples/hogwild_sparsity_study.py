"""Hogwild sparsity study: how data sparsity shapes asynchronous SGD.

Reproduces, through the public API, the paper's third exploratory axis:
on dense data, concurrent Hogwild updates collide on every model cache
line — the coherence storm makes parallel execution *slower per
iteration* than sequential — while on sparse data collisions are rare
and parallelism pays.  Statistical efficiency simultaneously degrades
with concurrency (staler reads).

The study sweeps thread counts over one dense (covtype) and one sparse
(news) dataset and prints both effects side by side.

Run:  python examples/hogwild_sparsity_study.py
"""

from __future__ import annotations

# Allow running straight from a source checkout: put the repo's src/
# tree on sys.path when the package is not installed.
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.asyncsim import AsyncSchedule, run_async_epoch
from repro.datasets import load
from repro.hardware import AsyncWorkload, CpuModel
from repro.models import make_model
from repro.sgd.convergence import tolerance_threshold
from repro.sgd.reference import reference_loss
from repro.utils import derive_rng, render_table

THREADS = (1, 4, 14, 56)


def study(dataset_name: str) -> list[list]:
    ds = load(dataset_name, "small")
    model = make_model("lr", ds)
    init = model.init_params(derive_rng(0, f"study/{dataset_name}"))
    cpu = CpuModel()
    workload = AsyncWorkload.for_linear(ds, model)

    optimal = reference_loss(model, ds.X, ds.y, init, key=None)
    initial = model.loss(ds.X, ds.y, init)
    target = tolerance_threshold(optimal, 0.05, initial)

    rows = []
    for threads in THREADS:
        # hardware efficiency from the machine model (paper scale)
        tpi = cpu.async_epoch_time(workload, threads)
        # statistical efficiency measured through the simulator
        w = init.copy()
        rng = derive_rng(0, f"study/{dataset_name}/{threads}")
        epochs = None
        for epoch in range(1, 121):
            run_async_epoch(
                model, ds.X, ds.y, w, 1.0, AsyncSchedule(concurrency=threads), rng
            )
            if model.loss(ds.X, ds.y, w) <= target:
                epochs = epoch
                break
        ttc = None if epochs is None else epochs * tpi
        rows.append([threads, tpi * 1e3, epochs, None if ttc is None else ttc])
    return rows


def main() -> None:
    for name, flavour in (("covtype", "dense"), ("news", "sparse")):
        rows = study(name)
        print(
            render_table(
                ["threads", "time/iter (ms)", "epochs to 5%", "time to conv (s)"],
                rows,
                title=f"{name} ({flavour}) — Hogwild under growing concurrency",
            )
        )
        print()
    print("Reading guide: on the dense dataset the per-iteration time *rises*")
    print("with threads (coherence storm; paper Table III, covtype), while on")
    print("the sparse dataset it falls. Epoch counts creep upward in both")
    print("cases - stale reads cost statistical efficiency.")


if __name__ == "__main__":
    main()
