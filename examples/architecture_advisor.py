"""Architecture advisor: which (architecture, strategy) wins for a task?

The paper's practical payoff is a decision guide: synchronous SGD
belongs on the GPU, asynchronous SGD belongs on the CPU, and choosing
*between those two* depends on the task and the data (Section IV-C).
This example shows both halves of `repro.sgd.advisor`:

* the **heuristic** recommendation straight from the data's statistics
  (no training at all), and
* the **measured** ranking across all six configurations — including
  the paper's financial remark, via a dollars-to-convergence column
  ("From a financial perspective, though, GPUs are likely the more
  cost-effective alternative").

Run:  python examples/architecture_advisor.py [task] [dataset]
      e.g. python examples/architecture_advisor.py svm news
"""

from __future__ import annotations

# Allow running straight from a source checkout: put the repo's src/
# tree on sys.path when the package is not installed.
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import sys

from repro.datasets import load, load_mlp
from repro.experiments import ExperimentContext
from repro.sgd.advisor import heuristic_advice, measure_advice
from repro.utils import render_table


def advise(task: str, dataset: str, tolerance: float = 0.01) -> None:
    ds = load_mlp(dataset, "small") if task == "mlp" else load(dataset, "small")
    quick = heuristic_advice(ds, task)
    print(f"Heuristic (no training): {quick.strategy} on {quick.architecture}")
    print(f"  rationale: {quick.rationale}\n")

    ctx = ExperimentContext(scale="small", tolerance=tolerance)
    measured = measure_advice(task, dataset, ctx=ctx)
    rows = [
        [
            r.strategy,
            r.architecture,
            r.time_to_convergence,
            r.dollars_to_convergence * 1000.0,
        ]
        for r in measured.ranking
    ]
    print(
        render_table(
            ["strategy", "architecture",
             f"time to {int(tolerance*100)}% (s)", "cost (m$)"],
            rows,
            title=f"Measured ranking for {task} on {dataset}",
            precision=3,
        )
    )
    fastest = measured.fastest
    cheapest = measured.cheapest
    print(f"\nfastest : {fastest.strategy} on {fastest.architecture} "
          f"({fastest.time_to_convergence:.3f}s)")
    print(f"cheapest: {cheapest.strategy} on {cheapest.architecture} "
          f"(${cheapest.dollars_to_convergence:.6f})")
    if (fastest.strategy, fastest.architecture) == (
        quick.strategy, quick.architecture,
    ):
        print("the heuristic matched the measurement.")
    else:
        print("the heuristic and the measurement disagree — the paper's "
              "point that the sync-vs-async winner is task- and "
              "dataset-dependent, so measure when it matters.")


def main() -> None:
    task = sys.argv[1] if len(sys.argv) > 1 else "lr"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "real-sim"
    advise(task, dataset)


if __name__ == "__main__":
    sys.exit(main() or 0)
