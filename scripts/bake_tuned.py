"""Bake scripts/tuned_steps.json into repro/experiments/tuned.py.

Synchronous winners apply to all architectures (statistical efficiency
is architecture-independent); asynchronous winners are per-architecture.
Cells the probe could not converge keep no entry (the runner falls back
to the task/strategy default and the tables report them as inf).
"""

from __future__ import annotations

import json
from pathlib import Path

SRC = Path("scripts/tuned_steps.json")
DST = Path("src/repro/experiments/tuned.py")

HEADER = '''"""Tuned step sizes per configuration at the default scale.

Produced by the paper's grid-search protocol (Section IV-A) run via
``scripts/probe_steps.py`` (regenerate with that script followed by
``scripts/bake_tuned.py``).

Keys are ``(task, dataset, strategy, architecture)``; architecture
``"*"`` applies to all architectures (synchronous runs: the statistical
efficiency — and hence the best step — is architecture-independent).
Configurations absent from the table fall back to the (task, strategy)
defaults in :mod:`repro.sgd.runner`.
"""

from __future__ import annotations

__all__ = ["TUNED_STEPS", "lookup_step"]

#: (task, dataset, strategy, architecture) -> step size.
TUNED_STEPS: dict[tuple[str, str, str, str], float] = {
'''

FOOTER = '''}


def lookup_step(
    task: str, dataset: str, strategy: str, architecture: str
) -> float | None:
    """Resolve a tuned step with exact-arch > wildcard precedence."""
    exact = TUNED_STEPS.get((task, dataset, strategy, architecture))
    if exact is not None:
        return exact
    return TUNED_STEPS.get((task, dataset, strategy, "*"))
'''


def main() -> None:
    data = json.loads(SRC.read_text())
    lines: list[str] = []
    seen_sync: set[tuple[str, str]] = set()
    for key, val in sorted(data.items()):
        task, ds, strategy, arch = key.split("/")
        step = val.get("step")
        if step is None:
            lines.append(
                f"    # {task}/{ds}/{strategy}/{arch}: no grid point converged "
                f"(reported as inf)\n"
            )
            continue
        if strategy == "synchronous":
            if (task, ds) in seen_sync:
                continue
            seen_sync.add((task, ds))
            arch_key = "*"
        else:
            arch_key = arch
        lines.append(
            f'    ("{task}", "{ds}", "{strategy}", "{arch_key}"): {float(step)},'
            f"  # epochs={val.get('epochs')}\n"
        )
    DST.write_text(HEADER + "".join(lines) + FOOTER, encoding="utf-8")
    print(f"wrote {DST} with {len(lines)} entries")


if __name__ == "__main__":
    main()
