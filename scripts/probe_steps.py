"""Calibration probe: best step size per paper configuration.

Runs the paper's grid-search protocol (coarse grid) for every
(task, dataset, strategy, architecture) cell and writes
scripts/tuned_steps.json; the winners get baked into
repro.experiments.tuned.TUNED_STEPS.

Usage: REPRO_CACHE_DIR=.repro_cache python scripts/probe_steps.py
"""

import json
import math
import time

from repro.sgd import train

OUT = "scripts/tuned_steps.json"
DATASETS = ["covtype", "w8a", "real-sim", "rcv1", "news"]

SYNC_GRIDS = {
    "lr": [30.0, 100.0, 300.0, 1000.0],
    "svm": [10.0, 30.0, 100.0, 300.0],
    "mlp": [1.0, 3.0, 10.0, 30.0, 100.0],
}
ASYNC_GRID = [0.03, 0.1, 0.3, 1.0, 3.0]
ASYNC_GPU_GRID = [0.01, 0.03, 0.1, 0.3, 1.0]
ASYNC_MLP_GRID = [0.1, 0.3, 1.0, 3.0]

results = {}
t_start = time.time()


def probe(task, ds, strategy, arch, grid, max_epochs):
    best = (math.inf, None, None)
    for step in grid:
        try:
            r = train(
                task,
                ds,
                architecture=arch,
                strategy=strategy,
                scale="small",
                step_size=step,
                max_epochs=max_epochs,
                early_stop_tolerance=0.01,
            )
        except Exception as e:  # pragma: no cover - probe robustness
            print(f"{task}/{ds}/{strategy}/{arch}/step={step}: ERROR {e}", flush=True)
            continue
        t = r.time_to(0.01)
        e = r.epochs_to(0.01)
        print(
            f"{task}/{ds}/{strategy}/{arch}/step={step}: t1%={t:.4f}s epochs={e} "
            f"final={r.curve.final_loss:.4f} [{time.time()-t_start:.0f}s]",
            flush=True,
        )
        if t < best[0]:
            best = (t, step, e)
    results[f"{task}/{ds}/{strategy}/{arch}"] = {
        "step": best[1],
        "time": None if math.isinf(best[0]) else best[0],
        "epochs": best[2],
    }
    with open(OUT, "w") as fh:
        json.dump(results, fh, indent=1)


for task in ("lr", "svm", "mlp"):
    for ds in DATASETS:
        # synchronous: statistical efficiency is arch-independent, so
        # one probe (costed on gpu) decides the step for all archs.
        probe(task, ds, "synchronous", "gpu", SYNC_GRIDS[task], 2500)
for task in ("lr", "svm", "mlp"):
    for ds in DATASETS:
        for arch in ("cpu-seq", "cpu-par", "gpu"):
            if task == "mlp":
                grid, cap = ASYNC_MLP_GRID, 700
            elif arch == "gpu":
                grid, cap = ASYNC_GPU_GRID, 400
            else:
                grid, cap = ASYNC_GRID, 300
            probe(task, ds, "asynchronous", arch, grid, cap)

print("DONE", time.time() - t_start, flush=True)
