"""Benchmark regression gate: fail if modelled time/epoch regressed.

Re-runs the :mod:`bench_snapshot` grid in memory and compares each
cell's ``sim.seconds_per_epoch`` gauge against the latest committed
``BENCH_<n>.json``.  Any cell more than ``--threshold`` (default 10%)
slower than the committed value fails the gate; faster cells and new
cells pass.  The modelled gauges are deterministic, so a genuine change
in a cell means a code change moved the cost model or the optimisation
— exactly what the gate should surface in CI.

``--inflate F`` multiplies the freshly measured values by ``F`` before
comparing — a self-test hook proving the gate actually trips (CI runs
``--inflate 2.0`` and asserts a non-zero exit).

A second, wall-clock gate guards the experiment-grid executor: the
snapshot grid is run end-to-end serially and with ``--grid-jobs``
workers on this machine, and the gate fails if the parallel run is
slower than the serial one beyond ``--grid-threshold`` — catching a
fan-out that stops paying for its own process overhead.  Both runs
happen back-to-back on the same host, so machine speed cancels out
(the committed snapshot's speedup is reported for context only).  The
``--inflate`` self-test skips this gate (it exercises the modelled-cell
comparison).

A third gate guards the scoring service: the bench's serving load runs
fresh (seeded generator, batched and direct modes back-to-back on this
host) and fails if the micro-batched path's sustained examples/sec
drops below ``--serve-threshold`` times the direct per-request
baseline — catching a batcher that stops paying for its own queueing.
Like the grid gate it is a same-host ratio, so machine speed cancels;
``--skip-serve`` is the escape hatch for 1-cpu hosts (also applied
automatically, and when the committed baseline predates the serving
section).

A fourth gate guards the distributed parameter-server backend: the
bench's ps scaling curve runs fresh (1 node, then the host's default
node count, back-to-back) and fails if the multi-node aggregate
updates/sec falls below ``--ps-threshold`` times the single-node rate —
catching a server that serialises its workers (a staleness gate that
over-blocks, a shard lock held across the wire).  Same-host ratio, so
machine speed cancels; skipped automatically on 1-cpu hosts and when
the committed baseline predates the ``ps`` section, ``--skip-ps``
is the explicit escape hatch.

A fifth gate rides the same fresh ps runs and guards the *wire
economics* of the batched protocol: pull round-trips per applied
update must be at least ``--ps-roundtrip-threshold`` times lower than
the committed baseline (default 3.0 — the legacy per-shard protocol
paid one round-trip per shard per item, 3-8x), and server->worker
bytes per update must not be above the baseline's.  Counter ratios,
not timings, so they are deterministic per dataset shape; baselines
that predate ``ps.pull_rounds`` fall back to ``ps.pulls`` (under the
per-shard protocol every answered shard was one round-trip).

Usage::

    REPRO_CACHE_DIR=.repro_cache python scripts/bench_compare.py
    python scripts/bench_compare.py --inflate 2.0   # must fail
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_SCRIPTS = Path(__file__).resolve().parent
if str(_SCRIPTS) not in sys.path:
    sys.path.insert(0, str(_SCRIPTS))

ROOT = Path(__file__).resolve().parent.parent
GAUGE = "sim.seconds_per_epoch"


def latest_bench_path() -> Path | None:
    paths = sorted(
        ROOT.glob("BENCH_*.json"),
        key=lambda p: int(p.stem.split("_")[1]),
    )
    return paths[-1] if paths else None


def cell_key(cell: dict) -> str:
    return "/".join(
        (cell["task"], cell["dataset"], cell["architecture"], cell["strategy"])
    )


def current_cells() -> list[dict]:
    """Re-run the snapshot grid (modelled cells only) in memory."""
    from bench_snapshot import ARCHITECTURES, GRID, STRATEGIES, run_cell

    cells = []
    for task, dataset in GRID:
        for architecture in ARCHITECTURES:
            for strategy in STRATEGIES:
                print(
                    f"  {task}/{dataset} {architecture} {strategy} ...",
                    flush=True,
                )
                cells.append(run_cell(task, dataset, architecture, strategy))
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="maximum tolerated relative slowdown per cell (default 0.10)",
    )
    parser.add_argument(
        "--inflate",
        type=float,
        default=1.0,
        help="multiply fresh values by this factor (gate self-test hook)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="compare against this snapshot instead of the latest BENCH_<n>.json",
    )
    parser.add_argument(
        "--grid-jobs",
        type=int,
        default=4,
        help="worker processes for the grid wall-clock gate (default 4)",
    )
    parser.add_argument(
        "--grid-threshold",
        type=float,
        default=0.25,
        help="maximum tolerated parallel/serial grid wall-clock ratio above "
        "1.0 (default 0.25: parallel may be at most 25%% slower than serial "
        "before the gate fails)",
    )
    parser.add_argument(
        "--skip-grid",
        action="store_true",
        help="skip the grid wall-clock gate (modelled cells only)",
    )
    parser.add_argument(
        "--serve-threshold",
        type=float,
        default=0.5,
        help="minimum tolerated batched/direct serving throughput ratio "
        "(default 0.5: the micro-batched path must sustain at least half "
        "the direct per-request examples/sec; it normally exceeds it)",
    )
    parser.add_argument(
        "--skip-serve",
        action="store_true",
        help="skip the serving throughput gate (escape hatch for 1-cpu "
        "hosts, where concurrent load measures scheduler noise)",
    )
    parser.add_argument(
        "--ps-threshold",
        type=float,
        default=0.5,
        help="minimum tolerated multi-node/single-node ps updates-per-second "
        "ratio (default 0.5: running at the default node count must sustain "
        "at least half the single-node update rate; it normally exceeds it)",
    )
    parser.add_argument(
        "--skip-ps",
        action="store_true",
        help="skip the parameter-server throughput gate (escape hatch for "
        "1-cpu hosts, where node processes only time-share)",
    )
    parser.add_argument(
        "--ps-roundtrip-threshold",
        type=float,
        default=3.0,
        help="minimum required improvement factor in ps pull round-trips "
        "per applied update over the committed baseline (default 3.0: the "
        "batched protocol must cost at least 3x fewer round-trips per "
        "update than the snapshot's)",
    )
    parser.add_argument(
        "--report-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write debug artifacts there (grid timing JSON + the grid "
        "manifests of both timed passes) — CI uploads the directory so "
        "gate failures are diagnosable from the workflow artifacts",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or latest_bench_path()
    if baseline_path is None:
        print("no committed BENCH_<n>.json to compare against; gate skipped")
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    committed = {cell_key(c): c for c in baseline["cells"]}

    fresh = current_cells()

    failures = []
    compared = 0
    for cell in fresh:
        key = cell_key(cell)
        old = committed.get(key)
        if old is None:
            print(f"  NEW   {key} (no committed value)")
            continue
        old_v = old.get("gauges", {}).get(GAUGE)
        new_v = cell.get("gauges", {}).get(GAUGE)
        if old_v is None or new_v is None or old_v <= 0:
            print(f"  SKIP  {key} (gauge missing)")
            continue
        new_v *= args.inflate
        ratio = new_v / old_v
        compared += 1
        status = "OK"
        if ratio > 1.0 + args.threshold:
            status = "FAIL"
            failures.append((key, old_v, new_v, ratio))
        print(
            f"  {status:<5} {key}: {GAUGE} {old_v:.6g} -> {new_v:.6g} "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )

    print(
        f"\ncompared {compared} cells against {baseline_path.name} "
        f"(threshold {args.threshold:.0%})"
    )
    if failures:
        print(f"{len(failures)} cell(s) regressed beyond the threshold:")
        for key, old_v, new_v, ratio in failures:
            print(f"  {key}: {old_v:.6g} -> {new_v:.6g} ({ratio:.2f}x)")
        return 1

    host_cpus = os.cpu_count() or 1
    if not args.skip_grid and args.inflate == 1.0 and host_cpus < 2:
        # A process pool cannot win on a single-CPU host; the ratio
        # would only measure fork overhead.  The gate needs real cores.
        print(f"\ngrid wall-clock gate skipped: host has {host_cpus} cpu")
    elif not args.skip_grid and args.inflate == 1.0:
        from bench_snapshot import run_grid_timing

        committed_grid = baseline.get("grid")
        if committed_grid and committed_grid.get("speedup"):
            print(
                f"\ncommitted grid speedup ({baseline_path.name}): "
                f"{committed_grid['speedup']:.2f}x at jobs={committed_grid['jobs']}"
            )
        print(f"\ngrid wall-clock gate (jobs={args.grid_jobs}):")
        grid = run_grid_timing(args.grid_jobs, manifest_dir=args.report_dir)
        if args.report_dir is not None:
            args.report_dir.mkdir(parents=True, exist_ok=True)
            (args.report_dir / "grid_timing.json").write_text(
                json.dumps(grid, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        ratio = grid["parallel_seconds"] / grid["serial_seconds"]
        print(
            f"  serial {grid['serial_seconds']:.2f}s, parallel "
            f"{grid['parallel_seconds']:.2f}s ({grid['speedup']:.2f}x speedup)"
        )
        if ratio > 1.0 + args.grid_threshold:
            print(
                f"grid gate FAILED: parallel run is {ratio:.2f}x the serial "
                f"wall-clock (limit {1.0 + args.grid_threshold:.2f}x)"
            )
            return 1

    if args.skip_serve or args.inflate != 1.0:
        pass  # self-test runs exercise the modelled-cell comparison only
    elif host_cpus < 2:
        print(f"\nserving throughput gate skipped: host has {host_cpus} cpu")
    elif "serving" not in baseline:
        # A baseline from before the serving section exists cannot
        # anchor the report; the ratio is still same-host, so run it —
        # but only informationally once a committed section exists.
        print(
            f"\nserving throughput gate skipped: {baseline_path.name} has "
            "no serving section (commit a fresh bench snapshot first)"
        )
    else:
        from bench_snapshot import GRID, run_serving

        committed_serving = {
            (s["task"], s["dataset"]): s for s in baseline["serving"]
        }
        print("\nserving throughput gate:")
        serve_failures = []
        for task, dataset in GRID:
            fresh_s = run_serving(task, dataset)
            ratio = fresh_s["batched_vs_direct_examples_per_s"]
            old = committed_serving.get((task, dataset))
            context = ""
            if old and old.get("batched_vs_direct_examples_per_s"):
                context = (
                    f" (committed ratio "
                    f"{old['batched_vs_direct_examples_per_s']:.2f})"
                )
            status = "OK"
            if ratio is None or ratio < args.serve_threshold:
                status = "FAIL"
                serve_failures.append((task, dataset, ratio))
            print(
                f"  {status:<5} {task}/{dataset}: batched "
                f"{fresh_s['batched']['requests_per_second']:.0f} rps "
                f"p50 {fresh_s['batched']['latency_p50_ms']:.2f}ms "
                f"p99 {fresh_s['batched']['latency_p99_ms']:.2f}ms, "
                f"batched/direct {ratio:.2f}x{context}"
            )
        if serve_failures:
            print(
                f"serving gate FAILED: {len(serve_failures)} task(s) below "
                f"the {args.serve_threshold:.2f}x batched/direct floor"
            )
            return 1

    if args.skip_ps or args.inflate != 1.0:
        pass  # self-test runs exercise the modelled-cell comparison only
    elif host_cpus < 2:
        print(f"\nps throughput gate skipped: host has {host_cpus} cpu")
    elif "ps" not in baseline:
        print(
            f"\nps throughput gate skipped: {baseline_path.name} has "
            "no ps section (commit a fresh bench snapshot first)"
        )
    else:
        from bench_snapshot import GRID, run_ps

        committed_ps = {(s["task"], s["dataset"]): s for s in baseline["ps"]}
        print("\nps (parameter-server) throughput gate:")
        ps_failures = []
        fresh_ps_runs = {}
        for task, dataset in GRID:
            fresh_ps = run_ps(task, dataset)
            fresh_ps_runs[(task, dataset)] = fresh_ps
            points = fresh_ps["points"]
            single = points[0]["updates_per_second"]
            multi = points[-1]["updates_per_second"]
            nodes = points[-1]["nodes"]
            ratio = (
                multi / single if single and multi is not None else None
            )
            context = ""
            old = committed_ps.get((task, dataset))
            if old and old.get("points"):
                old_single = old["points"][0].get("updates_per_second")
                old_multi = old["points"][-1].get("updates_per_second")
                if old_single and old_multi:
                    context = f" (committed ratio {old_multi / old_single:.2f})"
            status = "OK"
            if ratio is None or ratio < args.ps_threshold:
                status = "FAIL"
                ps_failures.append((task, dataset, ratio))
            shown = "n/a" if ratio is None else f"{ratio:.2f}x"
            rate = lambda v: "n/a" if v is None else f"{v:.0f}"  # noqa: E731
            print(
                f"  {status:<5} {task}/{dataset}: 1 node "
                f"{rate(single)} upd/s, {nodes} nodes "
                f"{rate(multi)} upd/s, ratio {shown}{context}"
            )
        if ps_failures:
            print(
                f"ps gate FAILED: {len(ps_failures)} task(s) below the "
                f"{args.ps_threshold:.2f}x multi/single-node floor"
            )
            return 1

        def _wire_cost(point: dict) -> tuple[float, float] | None:
            """(round-trips, server bytes) per update from one ps point.

            Pre-batching baselines have no ``ps.pull_rounds``; their
            ``ps.pulls`` was one blocking round-trip per answered shard,
            so it is the correct fallback.
            """
            counters = point.get("counters") or {}
            updates = counters.get("sgd.updates_applied")
            rounds = counters.get("ps.pull_rounds", counters.get("ps.pulls"))
            sent = counters.get("ps.bytes_sent")
            if not updates or rounds is None or sent is None:
                return None
            return rounds / updates, sent / updates

        print(
            "\nps wire-economics gate "
            f"(>= {args.ps_roundtrip_threshold:.1f}x fewer round-trips/update, "
            "bytes/update not above baseline):"
        )
        wire_failures = []
        for task, dataset in GRID:
            old = committed_ps.get((task, dataset))
            old_cost = (
                _wire_cost(old["points"][-1]) if old and old.get("points") else None
            )
            if old_cost is None:
                print(f"  SKIP  {task}/{dataset}: baseline lacks wire counters")
                continue
            new_cost = _wire_cost(fresh_ps_runs[(task, dataset)]["points"][-1])
            if new_cost is None:  # pragma: no cover - fresh runs always count
                print(f"  SKIP  {task}/{dataset}: fresh run lacks wire counters")
                continue
            old_rpu, old_bpu = old_cost
            new_rpu, new_bpu = new_cost
            improvement = old_rpu / new_rpu if new_rpu > 0 else float("inf")
            status = "OK"
            if improvement < args.ps_roundtrip_threshold or new_bpu > old_bpu:
                status = "FAIL"
                wire_failures.append((task, dataset, improvement, new_bpu, old_bpu))
            print(
                f"  {status:<5} {task}/{dataset}: round-trips/update "
                f"{old_rpu:.2f} -> {new_rpu:.2f} ({improvement:.1f}x fewer), "
                f"bytes/update {old_bpu:.0f} -> {new_bpu:.0f}"
            )
        if wire_failures:
            print(
                f"ps wire gate FAILED: {len(wire_failures)} task(s) short of "
                f"the {args.ps_roundtrip_threshold:.1f}x round-trip reduction "
                "or above baseline bytes/update"
            )
            return 1

    from repro.experiments import shutdown_grid_pool

    shutdown_grid_pool()
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
