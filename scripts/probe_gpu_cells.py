"""Re-probe only the asynchronous GPU cells (after schedule changes),
plus any cells listed as unresolved; merges into scripts/tuned_steps.json.
"""

import json
import math
import time

from repro.sgd import train

OUT = "scripts/tuned_steps.json"
DATASETS = ["covtype", "w8a", "real-sim", "rcv1", "news"]

results = json.load(open(OUT))
t_start = time.time()


def probe(task, ds, strategy, arch, grid, max_epochs):
    best = (math.inf, None, None)
    for step in grid:
        try:
            r = train(task, ds, architecture=arch, strategy=strategy, scale="small",
                      step_size=step, max_epochs=max_epochs, early_stop_tolerance=0.01)
        except Exception as e:
            print(f"{task}/{ds}/{arch}/step={step}: ERROR {e}", flush=True)
            continue
        t, e = r.time_to(0.01), r.epochs_to(0.01)
        print(f"{task}/{ds}/{strategy}/{arch}/step={step}: t1%={t:.4f}s epochs={e} "
              f"final={r.curve.final_loss:.4f} [{time.time()-t_start:.0f}s]", flush=True)
        if t < best[0]:
            best = (t, step, e)
    results[f"{task}/{ds}/{strategy}/{arch}"] = {
        "step": best[1],
        "time": None if math.isinf(best[0]) else best[0],
        "epochs": best[2],
    }
    with open(OUT, "w") as fh:
        json.dump(results, fh, indent=1)


for task in ("lr", "svm"):
    for ds in ("covtype", "w8a", "real-sim", "rcv1"):
        probe(task, ds, "asynchronous", "gpu", [0.03, 0.1, 0.3, 1.0, 3.0], 400)
print("DONE", time.time() - t_start, flush=True)
