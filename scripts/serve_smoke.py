"""End-to-end smoke test of the train-and-serve path (``make serve-smoke``).

The full loop, with real processes and real sockets:

1. start ``repro train --backend shm --snapshot-out ... --model-out ...``
   (a short but multi-epoch run, so snapshots keep publishing);
2. start ``repro serve --snapshot ...`` against the *live* run and score
   canned requests throughout — across hot-swaps, tolerating only the
   structured retriable errors, requiring at least two distinct model
   versions in the answers;
3. after the trainer exits (segment unlinked), score again: the last
   published model must still be served;
4. shut the server down over the socket and assert the serving manifest
   carries the ``serve.*`` telemetry keys and a clean exit;
5. re-serve the exported model artifact (``repro serve --model``) and
   check one scored margin against the artifact's own parameters.

Exit code 0 means every step held.  The script is deliberately
assert-heavy and chatty: it is the CI step named ``serve-smoke``.

Usage: python scripts/serve_smoke.py [--epochs N]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_SRC = ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving import request_once  # noqa: E402

CANNED_REQUESTS = [
    {
        "op": "score",
        "examples": [{"indices": [0, 5, 17], "values": [1.0, 1.0, 1.0]}],
    },
    {
        "op": "score",
        "examples": [
            {"indices": [2], "values": [2.5]},
            {"indices": [1, 3], "values": [-1.0, 0.5]},
        ],
    },
    {"op": "score", "examples": [[0.0] * 300]},
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    return env


def _spawn(args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
        cwd=ROOT,
    )


def _server_address(proc: subprocess.Popen) -> tuple[str, int]:
    line = proc.stdout.readline().strip()
    assert line.startswith("serving "), f"unexpected server banner: {line!r}"
    host, port = line.rsplit(" ", 1)[1].split(":")
    return host, int(port)


def _score_until_ok(host: str, port: int, deadline_s: float = 60.0) -> dict:
    """Poll with the canned request, tolerating only retriable errors."""
    deadline = time.time() + deadline_s
    while True:
        reply = request_once(host, port, CANNED_REQUESTS[0])
        if reply.get("ok"):
            return reply
        err = reply["error"]
        assert err["retriable"], f"non-retriable serve error: {err}"
        assert err["type"] == "snapshot-unavailable", err
        assert time.time() < deadline, "server never left cold start"
        time.sleep(0.05)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--epochs",
        type=int,
        default=150,
        help="trainer epochs; long enough to observe live hot-swaps "
        "(default 150)",
    )
    args = parser.parse_args(argv)

    tmp = Path(tempfile.mkdtemp(prefix="repro_serve_smoke_"))
    snap = tmp / "snapshot.json"
    model = tmp / "model.json"
    manifest_path = tmp / "serve_manifest.json"

    print("1. starting shm trainer with --snapshot-out ...", flush=True)
    trainer = _spawn(
        [
            "train",
            "--task",
            "lr",
            "--dataset",
            "w8a",
            "--backend",
            "shm",
            "--scale",
            "tiny",
            "--epochs",
            str(args.epochs),
            "--threads",
            "2",
            "--tolerance",
            "0.0001",
            "--snapshot-out",
            str(snap),
            "--model-out",
            str(model),
        ]
    )
    deadline = time.time() + 60
    while not snap.exists():
        assert time.time() < deadline, "trainer never wrote the descriptor"
        assert trainer.poll() is None, trainer.communicate()[1]
        time.sleep(0.05)

    print("2. attaching server to the live run ...", flush=True)
    server = _spawn(
        ["serve", "--snapshot", str(snap), "--manifest-out", str(manifest_path)]
    )
    host, port = _server_address(server)
    first = _score_until_ok(host, port)
    assert first["model_source"] == "shm", first
    print(f"   first answer at model version {first['model_version']}", flush=True)

    versions = {first["model_version"]}
    while trainer.poll() is None:
        for req in CANNED_REQUESTS:
            reply = request_once(host, port, req)
            if not reply.get("ok"):
                assert reply["error"]["retriable"], reply
                continue
            versions.add(reply["model_version"])
            # every example in one reply was scored under one version
            assert all("margin" in r for r in reply["results"]), reply
        time.sleep(0.01)
    assert trainer.returncode == 0, trainer.communicate()[1]
    assert len(versions) >= 2, (
        f"no hot-swap observed during training (versions: {sorted(versions)})"
    )
    print(
        f"   scored across {len(versions)} model versions during training",
        flush=True,
    )

    print("3. trainer gone; last snapshot must still serve ...", flush=True)
    reply = request_once(host, port, CANNED_REQUESTS[0])
    assert reply["ok"], reply
    stats = request_once(host, port, {"op": "stats"})["stats"]
    assert stats["hot_swaps"] >= 1, stats
    assert stats["requests"] > 0 and stats["model_source"] == "shm", stats

    print("4. socket shutdown + manifest assertions ...", flush=True)
    assert request_once(host, port, {"op": "shutdown"})["ok"]
    _, err = server.communicate(timeout=30)
    assert server.returncode == 0, (server.returncode, err)
    manifest = json.loads(manifest_path.read_text())
    assert manifest["schema"] == "repro.telemetry/serve-manifest/v1"
    for key in (
        "serve.requests",
        "serve.examples",
        "serve.batches",
        "serve.hot_swaps",
        "serve.snapshot.reads",
    ):
        assert key in manifest["counters"], (
            f"{key} missing from serve manifest counters: "
            f"{sorted(manifest['counters'])}"
        )
    assert any(
        k.startswith("serve.batch_size_bucket.") for k in manifest["counters"]
    ), sorted(manifest["counters"])
    for key in (
        "serve.latency_p50_ms",
        "serve.latency_p99_ms",
        "serve.snapshot.version",
        "serve.requests_per_second",
    ):
        assert key in manifest["gauges"], sorted(manifest["gauges"])
    # no score traffic between the stats op and shutdown, so the
    # manifest's final engine stats must match what the socket reported
    assert manifest["serving"]["requests"] == stats["requests"], (
        manifest["serving"]["requests"],
        stats["requests"],
    )
    print("   manifest carries the serve.* keys", flush=True)

    print("5. serving the exported artifact ...", flush=True)
    artifact_server = _spawn(["serve", "--model", str(model), "--no-watch"])
    host, port = _server_address(artifact_server)
    reply = request_once(host, port, CANNED_REQUESTS[0])
    assert reply["ok"] and reply["model_source"] == "artifact", reply
    doc = json.loads(model.read_text())
    params = [float(v) for v in doc["results"][0]["params"]]
    expected = params[0] + params[5] + params[17]
    got = reply["results"][0]["margin"]
    assert abs(got - expected) < 1e-9, (got, expected)
    assert request_once(host, port, {"op": "shutdown"})["ok"]
    artifact_server.communicate(timeout=30)
    assert artifact_server.returncode == 0

    print("serve-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
