"""CI gate: the parallel experiment grid must actually beat serial.

Times the :mod:`bench_snapshot` grid end-to-end through the
:class:`~repro.experiments.executor.GridExecutor`, serial vs ``--jobs``
workers (warm pool + shared-memory datasets, the steady-state path),
and fails unless ``serial / parallel > --floor``.  This is the
enforcement half of ROADMAP open item 3: with warm pools and shared
datasets the fan-out must *pay*, not just not lose.

On hosts with fewer CPUs than ``--jobs`` the ratio would measure
scheduler contention, not the executor — the gate hard-skips (exit 0)
with a loud notice instead of producing a meaningless number.

Usage::

    REPRO_CACHE_DIR=.repro_cache python scripts/grid_speedup.py \
        [--jobs 4] [--floor 1.3] [--report-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_SCRIPTS = Path(__file__).resolve().parent
if str(_SCRIPTS) not in sys.path:
    sys.path.insert(0, str(_SCRIPTS))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the parallel pass (default 4)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.3,
        help="minimum required serial/parallel speedup (default 1.3)",
    )
    parser.add_argument(
        "--report-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write the timing JSON and both passes' grid manifests there",
    )
    args = parser.parse_args(argv)

    host_cpus = os.cpu_count() or 1
    if host_cpus < args.jobs:
        print("=" * 72)
        print(
            f"GRID SPEEDUP GATE SKIPPED: host has {host_cpus} cpu(s), "
            f"gate needs >= {args.jobs}"
        )
        print(
            "The parallel/serial ratio on an undersized host measures "
            "scheduler contention, not the executor. Run on a host with "
            f">= {args.jobs} CPUs to enforce the {args.floor:.2f}x floor."
        )
        print("=" * 72)
        return 0

    from bench_snapshot import run_grid_timing
    from repro.experiments import shutdown_grid_pool

    print(f"grid speedup gate: jobs={args.jobs}, floor {args.floor:.2f}x")
    grid = run_grid_timing(args.jobs, manifest_dir=args.report_dir)
    shutdown_grid_pool()
    if args.report_dir is not None:
        args.report_dir.mkdir(parents=True, exist_ok=True)
        (args.report_dir / "grid_timing.json").write_text(
            json.dumps(grid, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    speedup = grid["speedup"] or 0.0
    print(
        f"  serial {grid['serial_seconds']:.2f}s, parallel "
        f"{grid['parallel_seconds']:.2f}s -> {speedup:.2f}x "
        f"(shared data: {grid['shared_data']}, "
        f"shm {grid['shm']['datasets']} datasets / "
        f"{grid['shm']['bytes']} bytes)"
    )
    if speedup <= args.floor:
        print(
            f"grid speedup gate FAILED: {speedup:.2f}x <= {args.floor:.2f}x "
            f"floor at jobs={args.jobs} on a {host_cpus}-cpu host"
        )
        return 1
    print(f"grid speedup gate passed: {speedup:.2f}x > {args.floor:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
