"""Write a telemetry-backed benchmark snapshot to BENCH_<n>.json.

Runs a small paper grid — LR and SVM, one dense and one sparse dataset,
all six (architecture x strategy) cells — with telemetry enabled, and
records per cell the two efficiency axes (modelled time/iteration,
epochs to the 2% tolerance) together with the counter totals (gradient
evaluations, stale reads, coherence conflicts, bytes moved, ...).

A ``measured`` section follows the modelled cells: each grid task is
also run through the shared-memory Hogwild backend
(:func:`repro.parallel.train_shm`) at 1..N worker processes, recording
*real* wall-clock seconds per epoch and the speedup curve over the
single-worker run — the host-hardware counterpart of the paper's Fig. 8
scaling measurements (worker counts are capped by the host's cores, so
the curve flattens on small runners; the point is the paper-trail).

A ``ps`` section mirrors ``measured`` over the distributed
parameter-server backend (:func:`repro.distributed.train_ps`) at 1..N
node processes: the same tasks, but every pull/push crosses a real
socket, so the points price the wire protocol against shm's in-place
scatter and record updates/sec as a cross-backend throughput axis.
Each ps entry ends with a ``failover`` drill: the shard server is
SIGKILLed mid-epoch under a live checkpoint policy and the measured
time-to-repair (death detected -> respawned server applying pushes)
is recorded next to the throughput numbers.

A ``grid`` section times the same grid end-to-end through the
process-pool :class:`~repro.experiments.executor.GridExecutor` —
serial (jobs=1) and parallel (``--jobs``, default 4) wall-clock on the
same warmed caches — recording the measured fan-out speedup alongside
the modelled numbers.

A ``serving`` section drives the train-and-serve path: each grid task's
trained model is served through the micro-batched
:class:`~repro.serving.ScoringEngine` under the seeded
:class:`~repro.serving.LoadGenerator`, recording sustained requests/sec
and p50/p99 latency for the coalescing (batched) path next to the
one-kernel-call-per-request (direct) baseline — the batched/direct
ratio is the number the bench_compare throughput gate watches, because
it cancels host speed.

The output lands at the repo root as BENCH_1.json, BENCH_2.json, ...
(next free index picked automatically) so successive snapshots form a
performance paper-trail; diff two files to see what a change did.

Usage: REPRO_CACHE_DIR=.repro_cache python scripts/bench_snapshot.py [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import repro
from repro.sgd import ARCHITECTURES, STRATEGIES
from repro.telemetry import Telemetry, build_manifest
from repro.telemetry.gitinfo import current_git_sha

BENCH_SCHEMA = "repro.telemetry/bench/v1"
ROOT = Path(__file__).resolve().parent.parent

#: Kept intentionally small: the snapshot is a regression tripwire, not
#: a paper regeneration (that is scripts/run_experiments.py).
SCALE = "tiny"
MAX_EPOCHS = 60
TOLERANCE = 0.02
#: Epochs for the measured (shm backend) scaling runs — short: we are
#: timing epochs, not converging.
MEASURED_EPOCHS = 8
GRID = [
    ("lr", "covtype"),   # fully dense
    ("svm", "w8a"),      # sparse
]


def next_bench_path() -> Path:
    n = 1
    while (ROOT / f"BENCH_{n}.json").exists():
        n += 1
    return ROOT / f"BENCH_{n}.json"


def run_cell(task: str, dataset: str, architecture: str, strategy: str) -> dict:
    tel = Telemetry()
    result = repro.train(
        task,
        dataset,
        architecture=architecture,
        strategy=strategy,
        scale=SCALE,
        max_epochs=MAX_EPOCHS,
        telemetry=tel,
    )
    manifest = build_manifest(
        result, tel, scale=SCALE, max_epochs=MAX_EPOCHS
    )
    return {
        "task": task,
        "dataset": dataset,
        "architecture": architecture,
        "strategy": strategy,
        "time_per_iter_s": result.time_per_iter,
        "epochs_to_2pct": result.epochs_to(TOLERANCE),
        "time_to_2pct_s": (
            None if result.time_to(TOLERANCE) == float("inf")
            else result.time_to(TOLERANCE)
        ),
        "final_loss": result.curve.final_loss,
        "counters": manifest.counters,
        "gauges": manifest.gauges,
    }


def run_measured(task: str, dataset: str) -> dict:
    """Real shm-backend scaling curve: wall seconds/epoch at 1..N workers."""
    from repro.parallel import default_shm_workers

    max_workers = default_shm_workers()
    points = []
    base = None
    for workers in range(1, max_workers + 1):
        result = repro.train(
            task,
            dataset,
            architecture="cpu-par",
            strategy="asynchronous",
            scale=SCALE,
            max_epochs=MEASURED_EPOCHS,
            early_stop_tolerance=None,
            backend="shm",
            threads=workers,
        )
        wall = result.measured["wall_seconds_per_epoch"]
        if base is None:
            base = wall
        points.append(
            {
                "workers": workers,
                "wall_seconds_per_epoch": wall,
                "speedup_vs_1": base / wall if wall > 0 else None,
                "final_loss": result.curve.final_loss,
                "counters": result.measured["counters"],
            }
        )
    return {
        "task": task,
        "dataset": dataset,
        "backend": "shm",
        "host_cpus": os.cpu_count(),
        "epochs": MEASURED_EPOCHS,
        "points": points,
    }


def run_ps(task: str, dataset: str) -> dict:
    """Distributed-backend scaling curve: wall seconds/epoch at 1..N nodes.

    Same shape as :func:`run_measured`, but every pull/push crosses a
    real socket — the points price the wire against shm's scatter, and
    ``updates_per_second`` is the cross-backend throughput axis.
    """
    from repro.distributed import default_ps_nodes
    from repro.telemetry import keys

    max_nodes = default_ps_nodes()
    points = []
    base = None
    for nodes in range(1, max_nodes + 1):
        result = repro.train(
            task,
            dataset,
            architecture="cpu-par",
            strategy="asynchronous",
            scale=SCALE,
            max_epochs=MEASURED_EPOCHS,
            early_stop_tolerance=None,
            backend="ps",
            nodes=nodes,
        )
        wall = result.measured["wall_seconds_per_epoch"]
        total = result.measured["wall_seconds_total"]
        counters = result.measured["counters"]
        if base is None:
            base = wall
        updates = counters.get(keys.UPDATES_APPLIED, 0)
        points.append(
            {
                "nodes": nodes,
                "shards": result.measured["shards"],
                "wall_seconds_per_epoch": wall,
                "speedup_vs_1": base / wall if wall > 0 else None,
                "updates_per_second": (
                    updates / total if total > 0 else None
                ),
                # Wire economics (the bench_compare round-trip gate):
                # pull round-trips and server->worker bytes one applied
                # update cost, plus the shard-cache hit share.
                "pulls_per_update": (
                    counters.get(keys.PS_PULL_ROUNDS, 0) / updates
                    if updates > 0
                    else None
                ),
                "bytes_per_update": (
                    counters.get(keys.PS_BYTES_SENT, 0) / updates
                    if updates > 0
                    else None
                ),
                "shard_cache_hits": counters.get(keys.PS_SHARD_CACHE_HITS, 0),
                "bytes_saved": counters.get(keys.PS_BYTES_SAVED, 0),
                "final_loss": result.curve.final_loss,
                "counters": counters,
            }
        )
    # Failover drill: SIGKILL the (standalone) server mid-epoch under a
    # live checkpoint policy and price the crash-restart — time-to-repair
    # is the robustness axis next to the wire-economics ones above.
    from repro.faults import FaultPlan

    drill_nodes = min(2, max_nodes)
    with tempfile.TemporaryDirectory(prefix="bench-ps-ckpt-") as ckpt_dir:
        result = repro.train(
            task,
            dataset,
            architecture="cpu-par",
            strategy="asynchronous",
            scale=SCALE,
            max_epochs=MEASURED_EPOCHS,
            early_stop_tolerance=None,
            backend="ps",
            nodes=drill_nodes,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=50,
            fault_plan=FaultPlan.parse(["server-kill@2"]),
            max_restarts=2,
        )
    counters = result.measured["counters"]
    failover = {
        "nodes": drill_nodes,
        "server_failovers": result.measured["server_failovers"],
        "time_to_repair_seconds": result.measured["time_to_repair_seconds"],
        "checkpoints_restored": counters.get(keys.PS_CHECKPOINTS_RESTORED, 0),
        "reconnects_midrun": counters.get(keys.PS_RECONNECTS_MIDRUN, 0),
        "final_loss": result.curve.final_loss,
    }

    return {
        "task": task,
        "dataset": dataset,
        "backend": "ps",
        "host_cpus": os.cpu_count(),
        "epochs": MEASURED_EPOCHS,
        "points": points,
        "failover": failover,
    }


#: Serving-section knobs: requests per load run and generator shape.
#: 8 concurrent clients x up to 16 examples per request gives kernels
#: meaty enough that coalescing amortises its queueing overhead — the
#: regime micro-batching exists for.
SERVE_REQUESTS = 600
SERVE_CONCURRENCY = 8
SERVE_MAX_EXAMPLES = 16
SERVE_SEED = 2024
SERVE_POOL = 256


def _example_pool(ds, limit: int = SERVE_POOL) -> list:
    """Dataset rows as scoring-request examples (sparse dicts or dense)."""
    from repro.linalg import CSRMatrix

    X = ds.X
    n = min(limit, X.shape[0])
    if isinstance(X, CSRMatrix):
        return [
            {
                "indices": X.indices[X.indptr[i] : X.indptr[i + 1]].tolist(),
                "values": X.data[X.indptr[i] : X.indptr[i + 1]].tolist(),
            }
            for i in range(n)
        ]
    return [X[i].tolist() for i in range(n)]


def run_serving(task: str, dataset: str) -> dict:
    """Sustained scoring throughput for one trained model: batched vs direct."""
    from repro.datasets import load
    from repro.serving import LoadGenerator, ScoringEngine, ServedModel

    result = repro.train(
        task,
        dataset,
        architecture="cpu-par",
        strategy="synchronous",
        scale=SCALE,
        max_epochs=10,
    )
    ds = load(dataset, SCALE)
    engine = ScoringEngine(task, ds.n_features)
    engine.install(ServedModel(params=result.params, version=1, source="artifact"))
    pool = _example_pool(ds)
    gen = LoadGenerator(
        engine,
        pool,
        seed=SERVE_SEED,
        concurrency=SERVE_CONCURRENCY,
        max_request_examples=SERVE_MAX_EXAMPLES,
    )
    with engine:
        # Warm-up so neither mode pays first-touch costs in its window.
        gen.run(50, mode="batched")
        batched = gen.run(SERVE_REQUESTS, mode="batched")
        direct = gen.run(SERVE_REQUESTS, mode="direct")
    stats = engine.stats()
    ratio = (
        batched.examples_per_second / direct.examples_per_second
        if direct.examples_per_second > 0
        else None
    )
    return {
        "task": task,
        "dataset": dataset,
        "n_features": ds.n_features,
        "pool": len(pool),
        "requests": SERVE_REQUESTS,
        "concurrency": SERVE_CONCURRENCY,
        "max_request_examples": SERVE_MAX_EXAMPLES,
        "seed": SERVE_SEED,
        "batched": batched.to_dict(),
        "direct": direct.to_dict(),
        "batched_vs_direct_examples_per_s": ratio,
        "batch_size_mean": stats.batch_size_mean,
        "batch_size_histogram": stats.batch_size_histogram,
    }


def _grid_context(jobs: int):
    from repro.experiments import ExperimentContext

    return ExperimentContext(
        scale=SCALE,
        tolerance=TOLERANCE,
        sync_max_epochs=MAX_EPOCHS,
        async_max_epochs=MAX_EPOCHS,
        tasks=tuple(dict.fromkeys(t for t, _ in GRID)),
        datasets=tuple(dict.fromkeys(d for _, d in GRID)),
        jobs=jobs,
    )


def run_grid_timing(jobs: int, manifest_dir: str | os.PathLike | None = None) -> dict:
    """Measured wall-clock of the grid: serial executor vs ``jobs`` workers.

    A warm-up pass at the target job count fills the in-process dataset
    and reference-loss caches *and* brings up the grid machinery the
    parallel pass will reuse — the shared-memory dataset segments and
    the warm worker pool — so both timed passes run against the same
    warm state and the ratio isolates the fan-out itself (workers re-run
    the optimisation; the parent re-costs shared synchronous bases
    either way).  This mirrors steady-state use: the first grid of a
    session pays the spawn/publish cost once, every later grid rides
    the warm pool.

    ``manifest_dir`` (debug artifact for the CI gates): write the grid
    manifests of both timed passes there.
    """
    from repro.experiments import (
        GridCell,
        GridExecutor,
        active_registry,
        warm_pool_info,
    )
    from repro.telemetry import build_grid_manifest

    cells = [
        GridCell(task, dataset, architecture, strategy)
        for task, dataset in GRID
        for strategy in STRATEGIES
        for architecture in ARCHITECTURES
    ]
    print(f"  grid warm-up (caches + shm + pool, jobs={jobs}) ...", flush=True)
    GridExecutor(_grid_context(jobs=jobs)).execute(cells)

    print("  grid serial timing ...", flush=True)
    serial_exec = GridExecutor(_grid_context(jobs=1))
    t0 = time.perf_counter()
    serial_exec.execute(cells)
    serial_s = time.perf_counter() - t0

    print(f"  grid parallel timing (jobs={jobs}) ...", flush=True)
    parallel_exec = GridExecutor(_grid_context(jobs=jobs))
    t0 = time.perf_counter()
    parallel_exec.execute(cells)
    parallel_s = time.perf_counter() - t0

    registry = active_registry()
    if manifest_dir is not None:
        out = Path(manifest_dir)
        out.mkdir(parents=True, exist_ok=True)
        for label, executor, n_jobs in (
            ("serial", serial_exec, 1),
            ("parallel", parallel_exec, jobs),
        ):
            manifest = build_grid_manifest(
                executor.cell_records,
                None,
                jobs=n_jobs,
                settings={"scale": SCALE, "tolerance": TOLERANCE, "timing": label},
            )
            (out / f"grid_manifest_{label}.json").write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
    return {
        "cells": len(cells),
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "shared_data": registry is not None and registry.dataset_count > 0,
        "pool": warm_pool_info(),
        "shm": {
            "datasets": registry.dataset_count if registry else 0,
            "segments": registry.segment_count if registry else 0,
            "bytes": registry.bytes_shared if registry else 0,
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the grid wall-clock section (default 4)",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    cells = []
    for task, dataset in GRID:
        for architecture in ARCHITECTURES:
            for strategy in STRATEGIES:
                print(f"  {task}/{dataset} {architecture} {strategy} ...",
                      flush=True)
                cells.append(run_cell(task, dataset, architecture, strategy))

    measured = []
    for task, dataset in GRID:
        print(f"  {task}/{dataset} shm measured scaling ...", flush=True)
        measured.append(run_measured(task, dataset))

    ps = []
    for task, dataset in GRID:
        print(f"  {task}/{dataset} ps measured scaling ...", flush=True)
        ps.append(run_ps(task, dataset))

    serving = []
    for task, dataset in GRID:
        print(f"  {task}/{dataset} serving load ...", flush=True)
        serving.append(run_serving(task, dataset))

    grid = run_grid_timing(args.jobs)
    # Explicit teardown (atexit would also do it): unlink the shared
    # dataset segments so the CI leak checks see a clean /dev/shm.
    from repro.experiments import shutdown_grid_pool

    shutdown_grid_pool()

    snapshot = {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "git_sha": current_git_sha(),
        "repro_version": repro.__version__,
        "settings": {
            "scale": SCALE,
            "max_epochs": MAX_EPOCHS,
            "measured_epochs": MEASURED_EPOCHS,
            "tolerance": TOLERANCE,
            "grid": [f"{t}/{d}" for t, d in GRID],
            "serve_requests": SERVE_REQUESTS,
            "serve_concurrency": SERVE_CONCURRENCY,
            "serve_max_examples": SERVE_MAX_EXAMPLES,
            "serve_seed": SERVE_SEED,
        },
        "cells": cells,
        "measured": measured,
        "ps": ps,
        "serving": serving,
        "grid": grid,
    }
    path = next_bench_path()
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path.name}: {len(cells)} cells in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
