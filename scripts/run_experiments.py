"""Regenerate the paper's full evaluation and write EXPERIMENTS.md.

Runs every table/figure driver at benchmark scale, puts the regenerated
ratios side by side with the paper's published values, and records the
shape-check verdicts.

Usage: REPRO_CACHE_DIR=.repro_cache python scripts/run_experiments.py [--jobs N]

``--jobs N`` fans the independent grid cells over N worker processes
(bit-identical results); ``--resume`` replays cells persisted by an
earlier, interrupted run from the on-disk result store; ``--keep-going``
switches the grid into degraded mode (failing cells are retried and, if
hopeless, quarantined and rendered as gaps instead of aborting the
whole report; see docs/RESILIENCE.md).
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from pathlib import Path

from repro.experiments import (
    ExperimentContext,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.paper_values import PAPER_TABLE2, PAPER_TABLE3
from repro.utils.tables import render_table

OUT = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"

ADDENDUM = "\n## Beyond the printed tables (extended artifacts)\n\n`pytest benchmarks/ -s` regenerates additional artifacts under\n`benchmarks/artifacts/`, each with shape assertions:\n\n| artifact | content | headline check |\n|---|---|---|\n| `fig1_space_*.txt` | the complete Fig. 1 cube incl. the unimplemented (light) corners via the representation axis | the dark circles win; densifying sparse data always slows iterations |\n| `tolerance_ladder.txt` | time to 10/5/2/1% per configuration (Section IV-A protocol) | asynchronous SGD leads at loose tolerances (Bertsekas, Section III) |\n| `scaling_sweeps.txt` | speedup-vs-threads curves (DimmWitted-style) | sync monotone & super-linear in the cache-resident regime; dense Hogwild collapses below 1x |\n| `hetero_future_work.txt` | CPU+GPU pairing (the paper's future work) | gains bounded by 2x, largest where Table II's gaps are smallest |\n| `strategies.txt` | Hogwild vs Cyclades vs model averaging vs real lock-free processes | Cyclades serially equivalent; averaging statistically weaker; text data defeats conflict-free scheduling |\n| `ablation_*.txt` | each modelled mechanism removed in turn | removing the mechanism removes the corresponding paper phenomenon |\n\nScale-transfer validation: `benchmarks/test_scale_stability.py` confirms\nepochs-to-tolerance agree within 3x between the `small` and `medium`\nscales for representative configurations, supporting the scaled-data\nmethodology end to end.\n"


def fmt(v, nd=2):
    if v is None:
        return "-"
    if isinstance(v, float) and math.isinf(v):
        return "inf"
    if isinstance(v, float):
        return f"{v:.{nd}f}"
    return str(v)


def verdict(ok: bool) -> str:
    return "reproduced" if ok else "NOT reproduced"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid (default 1 = serial)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay completed cells from the on-disk result store",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="retry/quarantine failing cells and render gaps instead of aborting",
    )
    args = parser.parse_args()

    store = None
    if args.jobs > 1 or args.resume:
        from repro.experiments import ResultStore

        store = ResultStore(
            os.path.join(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"), "grid")
        )

    t0 = time.time()
    ctx = ExperimentContext(
        scale="small",
        sync_max_epochs=3000,
        async_max_epochs=950,
        jobs=args.jobs,
        store=store,
        resume=args.resume,
        keep_going=args.keep_going,
    )
    sections: list[str] = []
    if args.jobs > 1 or args.resume:
        # One upfront prefetch exposes the whole grid's parallelism;
        # the drivers below then run entirely from the warm cache.
        ctx.prefetch(ctx.grid_cells())

    sections.append(
        "# EXPERIMENTS — paper vs. reproduction\n\n"
        "All measurements regenerated at the `small` benchmark scale\n"
        "(datasets scaled per DESIGN.md; hardware times from the machine\n"
        "models at the paper's full dataset sizes; statistical efficiency\n"
        "measured by running the real optimisation through the asynchrony\n"
        "simulator).  Absolute numbers are indicative; the reproduction\n"
        "target is the paper's *shape*: who wins, by what factor, and where\n"
        "the crossovers fall.  Regenerate with\n"
        "`python scripts/run_experiments.py` or `pytest benchmarks/ -s`.\n"
    )

    # ---- Table I ----------------------------------------------------------
    t1 = run_table1(ctx)
    sections.append("## Table I — datasets\n")
    sections.append("```\n" + t1.render() + "\n```\n")
    sections.append(
        f"Realised sparsity/dispersion/balance within band for all five "
        f"datasets: **{verdict(t1.all_ok())}**.\n"
    )
    print("table1 done", flush=True)

    # ---- Table II ---------------------------------------------------------
    t2 = run_table2(ctx)
    sections.append("## Table II — synchronous SGD (1% error)\n")
    sections.append("```\n" + t2.render() + "\n```\n")
    headers = [
        "task", "dataset",
        "epochs (paper)", "epochs (ours)",
        "seq/par (paper)", "seq/par (ours)",
        "par/gpu (paper)", "par/gpu (ours)",
    ]
    rows = []
    for p in PAPER_TABLE2:
        r = t2.row(p.task, p.dataset)
        rows.append([
            p.task, p.dataset,
            p.epochs, fmt(r.epochs, 0),
            fmt(p.speedup_seq_over_par), fmt(r.speedup_seq_over_par),
            fmt(p.speedup_par_over_gpu), fmt(r.speedup_par_over_gpu),
        ])
    sections.append("```\n" + render_table(headers, rows, title="Table II: paper vs ours") + "\n```\n")
    sections.append(
        "Shape checks: GPU always fastest per iteration/ttc: "
        f"**{verdict(t2.gpu_always_fastest())}**; parallel CPU always beats "
        f"sequential: **{verdict(t2.parallel_always_helps())}**; MLP "
        f"parallel speedup capped near 2x by the ViennaCL GEMM threshold: "
        f"**{verdict(t2.mlp_speedup_band())}**.\n\n"
        "Known divergences: the paper's sequential-CPU baselines are "
        "extremely slow (near-constant ~2s per iteration regardless of "
        "dataset size, implying per-element kernel overheads we chose not "
        "to model), so our cpu-seq/cpu-par speedups land in a 12-54x band "
        "versus the paper's 42-428x, with the cache-resident datasets "
        "(w8a, real-sim) at the top in both.\n"
    )
    print("table2 done", flush=True)

    # ---- Table III --------------------------------------------------------
    t3 = run_table3(ctx)
    sections.append("## Table III — asynchronous SGD (1% error)\n")
    sections.append("```\n" + t3.render() + "\n```\n")
    headers = [
        "task", "dataset",
        "seq/par (paper)", "seq/par (ours)",
        "gpu/par (paper)", "gpu/par (ours)",
        "ep gpu/seq (paper)", "ep gpu/seq (ours)",
    ]
    rows = []
    for p in PAPER_TABLE3:
        r = t3.row(p.task, p.dataset)
        pe = (
            "inf" if math.isinf(p.epochs_gpu)
            else fmt(p.epochs_gpu / max(p.epochs_cpu_seq, 1), 1)
        )
        oe = (
            "inf" if math.isinf(r.epochs_gpu)
            else fmt(r.epochs_gpu / max(r.epochs_cpu_seq, 1), 1)
        )
        rows.append([
            p.task, p.dataset,
            fmt(p.speedup_seq_over_par), fmt(r.speedup_seq_over_par),
            fmt(p.ratio_gpu_over_par), fmt(r.ratio_gpu_over_par),
            pe, oe,
        ])
    sections.append("```\n" + render_table(headers, rows, title="Table III: paper vs ours") + "\n```\n")
    gpu_wins = t3.gpu_wins_only_on_small_dense()
    only_small = all(ds in ("covtype", "w8a") for _t, ds in gpu_wins)
    sections.append(
        "Shape checks: asynchronous CPU wins time-to-convergence on every "
        "large sparse dataset (real-sim, rcv1, news, all tasks): "
        f"**{verdict(only_small)}** — the GPU wins only on "
        f"{sorted(gpu_wins)}: at reduced dataset scale the simulated device "
        "staleness cannot reach the paper's absolute in-flight window on "
        "the two smallest datasets, so their statistical penalty is "
        "compressed (see the 'ep gpu/seq' column) while the hardware gap "
        "persists.  Dense-data parallel Hogwild slower per iteration than "
        "sequential (coherence storm): "
        f"**{verdict(t3.dense_parallel_slower_per_iter())}**; Hogbatch "
        f"parallel speedup large for MLP: "
        f"**{verdict(t3.mlp_parallel_speedup_band())}**.\n"
    )
    print("table3 done", flush=True)

    # ---- Fig 6 ------------------------------------------------------------
    f6 = run_fig6(ctx)
    sections.append("## Fig. 6 — MLP architecture speedup sweep (real-sim)\n")
    sections.append("```\n" + f6.render() + "\n```\n")
    sections.append(
        f"Paper: speedup grows from ~2x to ~26x with net width; ours: "
        f"{f6.points[0].speedup_par_over_seq:.1f}x -> "
        f"{f6.points[-1].speedup_par_over_seq:.1f}x — "
        f"**{verdict(f6.speedup_grows_with_width() and f6.small_net_speedup_near_two())}**.\n"
    )
    print("fig6 done", flush=True)

    # ---- Fig 7 ------------------------------------------------------------
    f7 = run_fig7(ctx)
    sections.append("## Fig. 7 — synchronous GPU vs asynchronous CPU\n")
    sections.append("```\n" + f7.render() + "\n```\n")
    winners = f7.winners()
    n_sync = sum(1 for w in winners.values() if w == "sync-gpu")
    n_async = sum(1 for w in winners.values() if w == "async-cpu")
    sections.append(
        f"Winner split: sync-gpu {n_sync} / async-cpu {n_async} of "
        f"{len(winners)} panels.  Paper: no single winner (task- and "
        f"dataset-dependent) — "
        f"**{verdict(f7.winner_is_task_dataset_dependent())}**.\n"
    )
    sample = f7.panel("lr", "covtype")
    sections.append("Example panel (lr/covtype):\n\n```\n" + sample.render() + "\n```\n")
    print("fig7 done", flush=True)

    # ---- Figs 8 & 9 --------------------------------------------------------
    f8 = run_fig8(ctx)
    sections.append("## Fig. 8 — GPU-over-parallel-CPU speedup, LR/SVM vs BIDMach\n")
    sections.append("```\n" + f8.render() + "\n```\n")
    sections.append(
        "Paper: our speedups are similar or better than BIDMach's, with "
        "BIDMach's dense-optimised GPU kernels losing on sparse data — "
        f"**{verdict(f8.ours_not_dominated())}**.\n"
    )
    f9 = run_fig9(ctx)
    sections.append("## Fig. 9 — GPU-over-parallel-CPU speedup, MLP vs TensorFlow\n")
    sections.append("```\n" + f9.render() + "\n```\n")
    ok9 = all(
        f9.get("mlp", d, "ours-sync") > f9.get("mlp", d, "tensorflow")
        for d in ctx.datasets
    )
    sections.append(
        "Paper: 'we always obtain a superior GPU speedup' vs TensorFlow — "
        f"**{verdict(ok9)}**.\n"
    )
    print("fig8/9 done", flush=True)

    sections.append(ADDENDUM)
    sections.append(
        f"---\n\nGenerated in {time.time() - t0:.0f}s by "
        "`scripts/run_experiments.py`.\n"
    )
    OUT.write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    sys.exit(main())
